"""Segments, bound regions, and resolution."""

from __future__ import annotations

import pytest

from repro.core.flags import PageFlags
from repro.core.segment import Segment
from repro.errors import BindingError, SegmentError


def seg(seg_id=0, n_pages=16, **kwargs) -> Segment:
    return Segment(seg_id, n_pages, 4096, **kwargs)


class TestSegmentBasics:
    def test_construction(self):
        s = seg(n_pages=8, name="code")
        assert s.n_pages == 8
        assert s.size_bytes == 8 * 4096
        assert s.resident_pages == 0
        assert s.name == "code"

    def test_default_name(self):
        assert seg(seg_id=7).name == "segment-7"

    def test_invalid_sizes(self):
        with pytest.raises(SegmentError):
            Segment(0, -1, 4096)
        with pytest.raises(SegmentError):
            Segment(0, 4, 0)

    def test_grow_and_ensure_size(self):
        s = seg(n_pages=4)
        s.grow(2)
        assert s.n_pages == 6
        s.ensure_size(5)
        assert s.n_pages == 6
        s.ensure_size(10)
        assert s.n_pages == 10
        with pytest.raises(SegmentError):
            s.grow(0)

    def test_page_range_checks(self):
        s = seg(n_pages=4)
        s.check_page_range(0, 4)
        with pytest.raises(SegmentError):
            s.check_page_range(0, 5)
        with pytest.raises(SegmentError):
            s.check_page_range(-1, 1)
        with pytest.raises(SegmentError):
            s.check_page_range(0, 0)


class TestBindings:
    def test_bind_and_translate(self):
        vas, data = seg(0, 32), seg(1, 8)
        binding = vas.bind(16, 8, data, 0)
        assert binding.covers(16) and binding.covers(23)
        assert not binding.covers(24)
        assert binding.translate(18) == 2

    def test_bind_rejects_self(self):
        s = seg()
        with pytest.raises(BindingError):
            s.bind(0, 4, s, 0)

    def test_bind_rejects_page_size_mismatch(self):
        a = Segment(0, 8, 4096)
        b = Segment(1, 8, 16384)
        with pytest.raises(BindingError):
            a.bind(0, 4, b, 0)

    def test_bind_rejects_overlap(self):
        vas, d1, d2 = seg(0, 32), seg(1, 8), seg(2, 8)
        vas.bind(0, 8, d1, 0)
        with pytest.raises(BindingError):
            vas.bind(4, 8, d2, 0)
        vas.bind(8, 8, d2, 0)  # adjacent is fine

    def test_bind_rejects_out_of_range(self):
        vas, data = seg(0, 8), seg(1, 4)
        with pytest.raises(SegmentError):
            vas.bind(6, 4, data, 0)  # outside vas
        with pytest.raises(SegmentError):
            vas.bind(0, 4, data, 2)  # outside target

    def test_unbind(self):
        vas, data = seg(0, 8), seg(1, 4)
        binding = vas.bind(0, 4, data, 0)
        vas.unbind(binding)
        assert vas.binding_covering(0) is None
        with pytest.raises(BindingError):
            vas.unbind(binding)

    def test_translate_outside_region(self):
        vas, data = seg(0, 8), seg(1, 4)
        binding = vas.bind(0, 4, data, 0)
        with pytest.raises(BindingError):
            binding.translate(5)


class TestResolution:
    def test_resolves_through_binding_chain(self, memory):
        vas, mid, leaf = seg(0, 8), seg(1, 8), seg(2, 8)
        vas.bind(0, 4, mid, 4)
        mid.bind(4, 4, leaf, 0)
        frame = memory.frame(0)
        frame.flags = int(PageFlags.rw())
        leaf.pages[1] = frame
        res = vas.resolve(1)
        assert res.owner is leaf
        assert res.page == 1
        assert res.frame is frame
        assert res.depth == 2

    def test_protection_is_meet_along_chain(self, memory):
        vas, data = seg(0, 8), seg(1, 8)
        vas.bind(0, 8, data, 0, prot_mask=PageFlags.READ)
        frame = memory.frame(0)
        frame.flags = int(PageFlags.rw())
        data.pages[0] = frame
        res = vas.resolve(0)
        assert PageFlags.READ in res.prot
        assert PageFlags.WRITE not in res.prot

    def test_segment_prot_applies(self, memory):
        s = seg(0, 8, prot=PageFlags.READ)
        frame = memory.frame(0)
        frame.flags = int(PageFlags.rw())
        s.pages[0] = frame
        res = s.resolve(0)
        assert PageFlags.WRITE not in res.prot

    def test_missing_page_resolution(self):
        s = seg(0, 8)
        res = s.resolve(3)
        assert res.frame is None
        assert res.owner is s
        assert res.page == 3

    def test_cycle_detected(self):
        a, b = seg(0, 8), seg(1, 8)
        a.bind(0, 4, b, 0)
        b.bind(0, 4, a, 0)
        with pytest.raises(BindingError):
            a.resolve(0)

    def test_out_of_range_page(self):
        with pytest.raises(SegmentError):
            seg(0, 4).resolve(4)


class TestCOWResolution:
    def test_read_falls_through_to_source(self, memory):
        source = seg(0, 8)
        frame = memory.frame(0)
        frame.flags = int(PageFlags.rw())
        source.pages[2] = frame
        shadow = Segment(1, 8, 4096, cow_source=source)
        res = shadow.resolve(2, for_write=False)
        assert res.owner is source
        assert res.frame is frame
        # the shared view is never writable
        assert PageFlags.WRITE not in res.prot

    def test_write_requires_privatization(self, memory):
        source = seg(0, 8)
        frame = memory.frame(0)
        frame.flags = int(PageFlags.rw())
        source.pages[2] = frame
        shadow = Segment(1, 8, 4096, cow_source=source)
        res = shadow.resolve(2, for_write=True)
        assert res.needs_cow
        assert res.owner is shadow
        assert res.page == 2
        assert res.cow_source_frame is frame

    def test_own_page_shadows_source(self, memory):
        source = seg(0, 8)
        src_frame = memory.frame(0)
        src_frame.flags = int(PageFlags.rw())
        source.pages[2] = src_frame
        shadow = Segment(1, 8, 4096, cow_source=source)
        own = memory.frame(1)
        own.flags = int(PageFlags.rw())
        shadow.pages[2] = own
        res = shadow.resolve(2, for_write=True)
        assert not res.needs_cow
        assert res.frame is own

    def test_pages_past_source_do_not_cow(self):
        source = seg(0, 2)
        shadow = Segment(1, 8, 4096, cow_source=source)
        res = shadow.resolve(5, for_write=True)
        assert not res.needs_cow
        assert res.frame is None
        assert res.owner is shadow
