"""The consistency auditor: catches deliberately injected corruption."""

from __future__ import annotations

import pytest

from repro.analysis.audit import (
    audit_kernel,
    audit_manager,
    audit_spcm,
    audit_system,
)
from repro.errors import MigrationError
from repro.managers.base import GenericSegmentManager


class TestCleanSystems:
    def test_fresh_system_is_consistent(self, system):
        report = audit_system(system)
        assert report.ok, report.findings
        assert report.checks_run >= 5

    def test_exercised_system_is_consistent(self, system):
        kernel = system.kernel
        manager = GenericSegmentManager(
            kernel, system.spcm, "work", initial_frames=64
        )
        seg = kernel.create_segment(32, manager=manager)
        for page in range(32):
            kernel.reference(seg, page * 4096, write=(page % 2 == 0))
        manager.reclaim_pages(8)
        manager.return_frames(4)
        file_seg = kernel.create_segment(
            0, name="f", manager=system.default_manager, auto_grow=True
        )
        system.file_server.create_file(file_seg)
        system.uio.write(file_seg, 0, b"x" * (8 * 4096))
        report = audit_system(system)
        assert report.ok, report.findings


class TestInjectedCorruption:
    def test_detects_lost_frame(self, system):
        kernel = system.kernel
        boot = kernel.initial_segment
        page = next(iter(boot.pages))
        del boot.pages[page]  # corruption: the frame vanishes
        report = audit_kernel(kernel)
        assert not report.ok
        assert any("owned by nobody" in f for f in report.findings)

    def test_detects_double_ownership(self, system):
        kernel = system.kernel
        boot = kernel.initial_segment
        seg = kernel.create_segment(4, name="dup")
        page = next(iter(boot.pages))
        seg.pages[0] = boot.pages[page]  # corruption: filed twice
        report = audit_kernel(kernel)
        assert any("AND segment" in f for f in report.findings)

    def test_detects_bad_backref(self, system):
        kernel = system.kernel
        boot = kernel.initial_segment
        frame = next(iter(boot.pages.values()))
        frame.owner_segment_id = 9999  # corruption
        report = audit_kernel(kernel)
        assert any("records owner" in f for f in report.findings)

    def test_detects_stale_translation(self, system):
        kernel = system.kernel
        manager = GenericSegmentManager(
            kernel, system.spcm, "stale", initial_frames=16
        )
        seg = kernel.create_segment(4, manager=manager)
        kernel.reference(seg, 0, write=True)
        # corruption: move the frame without the kernel's shootdown
        frame = seg.pages.pop(0)
        spare = kernel.create_segment(4, name="spare")
        spare.pages[0] = frame
        frame.owner_segment_id = spare.seg_id
        report = audit_kernel(kernel)
        assert any("translation" in f for f in report.findings)

    def test_detects_manager_slot_confusion(self, system):
        manager = GenericSegmentManager(
            system.kernel, system.spcm, "confused", initial_frames=8
        )
        slot = manager._free_slots[0]
        manager._empty_slots.append(slot)  # corruption: both lists
        report = audit_manager(manager)
        assert any("both free and empty" in f for f in report.findings)

    def test_detects_spcm_pool_drift(self, system):
        system.spcm._free[4096].append(999_999)  # corruption
        report = audit_spcm(system.spcm)
        assert any("pool" in f for f in report.findings)

    def test_raise_if_failed(self, system):
        boot = system.kernel.initial_segment
        del boot.pages[next(iter(boot.pages))]
        report = audit_kernel(system.kernel)
        with pytest.raises(MigrationError):
            report.raise_if_failed()

    def test_clean_report_does_not_raise(self, system):
        audit_system(system).raise_if_failed()
