"""The System Page Cache Manager: grants, constraints, zero-fill."""

from __future__ import annotations

import pytest

from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.errors import AllocationRefusedError, SPCMError
from repro.managers.base import GenericSegmentManager
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import FrameRequest, SystemPageCacheManager


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel, policy=ReservePolicy(reserve_frames=16))
    manager = GenericSegmentManager(kernel, spcm, "app", initial_frames=0)
    return kernel, spcm, manager


class TestGrants:
    def test_grant_moves_frames_from_boot(self, world):
        kernel, spcm, manager = world
        before = spcm.available_frames()
        pages = spcm.request_frames(
            manager, FrameRequest("app", 8), manager.free_segment
        )
        assert len(pages) == 8
        assert spcm.available_frames() == before - 8
        assert spcm.held_by("app") == 8
        kernel.check_frame_conservation()

    def test_grants_append_contiguously(self, world):
        _, spcm, manager = world
        pages = spcm.request_frames(
            manager, FrameRequest("app", 8), manager.free_segment
        )
        assert pages == list(range(pages[0], pages[0] + 8))

    def test_partial_grant_at_reserve(self, world):
        _, spcm, manager = world
        available = spcm.available_frames()
        pages = spcm.request_frames(
            manager,
            FrameRequest("app", available),
            manager.free_segment,
        )
        assert len(pages) == available - 16  # reserve kept back

    def test_defer_when_only_reserve_remains(self, world):
        _, spcm, manager = world
        available = spcm.available_frames()
        spcm.request_frames(
            manager, FrameRequest("app", available), manager.free_segment
        )
        pages = spcm.request_frames(
            manager, FrameRequest("app", 1), manager.free_segment
        )
        assert pages == []
        assert spcm.deferred_requests == 1

    def test_zero_frames_rejected(self, world):
        _, spcm, manager = world
        with pytest.raises(SPCMError):
            spcm.request_frames(
                manager, FrameRequest("app", 0), manager.free_segment
            )

    def test_return_frames(self, world):
        kernel, spcm, manager = world
        pages = spcm.request_frames(
            manager, FrameRequest("app", 4), manager.free_segment
        )
        available = spcm.available_frames()
        spcm.return_frames(manager, manager.free_segment, pages)
        assert spcm.available_frames() == available + 4
        assert spcm.held_by("app") == 0
        kernel.check_frame_conservation()

    def test_return_unbacked_page_rejected(self, world):
        _, spcm, manager = world
        manager.free_segment.grow(1)
        with pytest.raises(SPCMError):
            spcm.return_frames(
                manager, manager.free_segment, [manager.free_segment.n_pages - 1]
            )


class TestConstraints:
    def test_physical_range_constraint(self, world):
        kernel, spcm, manager = world
        pages = spcm.request_frames(
            manager,
            FrameRequest("app", 4, phys_lo=100 * 4096, phys_hi=104 * 4096),
            manager.free_segment,
        )
        assert len(pages) == 4
        addrs = sorted(
            manager.free_segment.pages[p].phys_addr for p in pages
        )
        assert addrs == [100 * 4096 + i * 4096 for i in range(4)]

    def test_constrained_request_partially_satisfied(self, world):
        """'It allocates and provides as many page frames as it can'
        (S2.4)."""
        _, spcm, manager = world
        pages = spcm.request_frames(
            manager,
            FrameRequest("app", 10, phys_lo=0, phys_hi=4 * 4096),
            manager.free_segment,
        )
        assert len(pages) == 4

    def test_color_constraint(self, world):
        _, spcm, manager = world
        pages = spcm.request_frames(
            manager,
            FrameRequest("app", 4, colors=frozenset({3}), n_colors=16),
            manager.free_segment,
        )
        assert len(pages) == 4
        for p in pages:
            assert manager.free_segment.pages[p].color(16) == 3

    def test_color_requires_modulus(self, world):
        _, spcm, manager = world
        with pytest.raises(SPCMError):
            spcm.request_frames(
                manager,
                FrameRequest("app", 1, colors=frozenset({1})),
                manager.free_segment,
            )

    def test_page_size_must_exist(self, world):
        _, spcm, manager = world
        with pytest.raises(SPCMError):
            spcm.request_frames(
                manager,
                FrameRequest("app", 1, page_size=16384),
                manager.free_segment,
            )


class TestZeroFillAcrossUsers:
    def test_cross_account_transfer_zeroes(self, world):
        kernel, spcm, manager = world
        other = GenericSegmentManager(kernel, spcm, "other", initial_frames=0)
        pages = spcm.request_frames(
            manager, FrameRequest("app", 1), manager.free_segment
        )
        frame = manager.free_segment.pages[pages[0]]
        frame.write(b"secret")
        spcm.return_frames(manager, manager.free_segment, pages)
        got = spcm.request_frames(
            other, FrameRequest("other", spcm.available_frames()),
            other.free_segment,
        )
        # our frame is among them, zeroed in transit
        zeroed = [
            other.free_segment.pages[p]
            for p in got
            if other.free_segment.pages[p] is frame
        ]
        assert zeroed and zeroed[0].read(0, 6) == bytes(6)
        assert kernel.stats.zero_fills >= 1

    def test_same_account_reallocation_keeps_data(self, world):
        """The V++ economy: no zeroing unless the user changes (S3.1)."""
        kernel, spcm, manager = world
        pages = spcm.request_frames(
            manager, FrameRequest("app", 1), manager.free_segment
        )
        frame = manager.free_segment.pages[pages[0]]
        frame.write(b"mine")
        spcm.return_frames(manager, manager.free_segment, pages)
        zero_before = kernel.stats.zero_fills
        spcm.request_frames(
            manager, FrameRequest("app", spcm.available_frames()),
            manager.free_segment,
        )
        assert kernel.stats.zero_fills == zero_before


class TestForcedReclaim:
    def test_force_reclaim_calls_manager(self, world):
        kernel, spcm, manager = world
        manager.request_frames(16)
        seg = kernel.create_segment(8, manager=manager)
        for page in range(8):
            kernel.reference(seg, page * 4096)
        freed = spcm.force_reclaim(manager, 8)
        assert freed == 8
