"""Property test: UIO reads/writes behave like a flat byte array."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_system

MAX_FILE = 6 * 4096  # spans several pages, exercises append units

operations = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(0, MAX_FILE - 1),          # offset
        st.integers(1, 2 * 4096),              # length
        st.integers(0, 255),                   # fill byte for writes
    ),
    min_size=1,
    max_size=25,
)


@given(operations)
@settings(max_examples=40, deadline=None)
def test_uio_matches_byte_array_model(ops):
    system = build_system(memory_mb=8, manager_frames=64)
    seg = system.kernel.create_segment(
        0, name="f", manager=system.default_manager, auto_grow=True
    )
    system.file_server.create_file(seg)
    model = bytearray()
    for op, offset, length, fill in ops:
        if op == "write":
            offset = min(offset, len(model))  # no holes: append or overwrite
            payload = bytes([fill]) * length
            system.uio.write(seg, offset, payload)
            end = offset + length
            if end > len(model):
                model.extend(bytes(end - len(model)))
            model[offset:end] = payload
        else:
            got = system.uio.read(seg, offset, length)
            expected = bytes(model[offset : offset + length])
            assert got == expected
    # final full-content check plus conservation
    assert system.uio.read(seg, 0, len(model)) == bytes(model)
    system.kernel.check_frame_conservation()


@given(
    st.integers(1, MAX_FILE),
    st.integers(1, 8),
)
@settings(max_examples=25, deadline=None)
def test_uio_roundtrip_survives_reclaim(size, n_reclaims):
    """Data written through UIO survives its pages being reclaimed (the
    manager writes dirty file pages back before migrating them out)."""
    system = build_system(memory_mb=8, manager_frames=64)
    kernel = system.kernel
    seg = kernel.create_segment(
        0, name="f", manager=system.default_manager, auto_grow=True
    )
    system.file_server.create_file(seg)
    payload = bytes(i % 251 for i in range(size))
    system.uio.write(seg, 0, payload)
    resident = sorted(seg.pages)
    for page in resident[:n_reclaims]:
        if page in seg.pages:
            system.default_manager.reclaim_one(seg, page)
    system.default_manager.invalidate_reclaim_cache()
    assert system.uio.read(seg, 0, size) == payload
    kernel.check_frame_conservation()
