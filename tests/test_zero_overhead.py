"""The zero-overhead contract of the disabled observability hooks.

With :data:`NULL_TRACER`, :data:`NULL_INJECTOR` and no kernel listeners
installed (the benchmarked configuration), the fault path must not
allocate a single block on behalf of tracing or injection --- the null
objects hand out shared singletons and every hook site is guarded by an
``enabled`` flag.  These tests pin that contract with tracemalloc so an
accidental allocation on the hot path (a span record built before the
``enabled`` check, an f-string in a guard) fails CI rather than quietly
taxing every benchmark.
"""

from __future__ import annotations

import tracemalloc

import repro.chaos.injector as injector_mod
import repro.obs.records as records_mod
import repro.obs.trace as trace_mod
from repro.chaos.injector import NULL_INJECTOR
from repro.obs.trace import NULL_TRACER
from repro.verify.oracle import build_vpp_system, drive_vpp
from repro.verify.schedule import figure2_schedule

#: the files whose allocations the null configuration must not touch
_OBSERVABILITY_FILES = (
    trace_mod.__file__,
    records_mod.__file__,
    injector_mod.__file__,
)


def _blocks_allocated_in(snapshot, path: str) -> int:
    """Live tracemalloc blocks attributed to ``path``."""
    stats = snapshot.filter_traces(
        (tracemalloc.Filter(True, path),)
    ).statistics("filename")
    return sum(stat.count for stat in stats)


class TestNullSingletons:
    def test_null_tracer_span_is_shared(self):
        """Every null span is the same object: opening one costs nothing."""
        a = NULL_TRACER.span("kernel", "dispatch_fault", kind="x")
        b = NULL_TRACER.span("manager", "handle_fault")
        assert a is b
        with a as span:
            span.set_attr("k", "v")

    def test_null_objects_read_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_INJECTOR.enabled is False


class TestFaultPathAllocations:
    def test_serviced_faults_allocate_nothing_for_tracing(self):
        """A full Figure-2 drive with the nulls installed retains zero
        blocks from the trace, record, or injector modules."""
        schedule = figure2_schedule()
        # warm-up drive: fills import-time and memoization caches so the
        # measured drive sees only steady-state fault-path allocations
        system, _manager, segments = build_vpp_system(schedule)
        drive_vpp(system, schedule, segments)

        system, _manager, segments = build_vpp_system(schedule)
        kernel = system.kernel
        assert kernel.tracer is NULL_TRACER
        assert kernel.injector is NULL_INJECTOR
        assert not kernel._fault_listeners
        assert not kernel._fault_step_listeners
        assert not kernel._failover_listeners

        tracemalloc.start()
        try:
            drive_vpp(system, schedule, segments)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()

        assert kernel.stats.faults > 0  # the drive really faulted
        for path in _OBSERVABILITY_FILES:
            assert _blocks_allocated_in(snapshot, path) == 0, (
                f"null-dispatch fault path allocated blocks in {path}"
            )
