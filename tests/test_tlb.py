"""The software-managed TLB model."""

from __future__ import annotations

import pytest

from repro.hw.tlb import TLB


class TestTLB:
    def test_insert_lookup(self):
        tlb = TLB(4)
        tlb.insert(1, 10, (42, True))
        assert tlb.lookup(1, 10) == (42, True)
        assert tlb.stats.hits == 1

    def test_miss(self):
        tlb = TLB(4)
        assert tlb.lookup(1, 10) is None
        assert tlb.stats.misses == 1

    def test_lru_eviction_order(self):
        tlb = TLB(2)
        tlb.insert(1, 1, "a")
        tlb.insert(1, 2, "b")
        tlb.lookup(1, 1)          # refresh 1 -> LRU victim is 2
        tlb.insert(1, 3, "c")
        assert tlb.lookup(1, 2) is None
        assert tlb.lookup(1, 1) == "a"
        assert tlb.lookup(1, 3) == "c"
        assert tlb.stats.evictions == 1

    def test_reinsert_does_not_evict(self):
        tlb = TLB(2)
        tlb.insert(1, 1, "a")
        tlb.insert(1, 2, "b")
        tlb.insert(1, 1, "a2")
        assert len(tlb) == 2
        assert tlb.stats.evictions == 0
        assert tlb.lookup(1, 1) == "a2"

    def test_invalidate(self):
        tlb = TLB(4)
        tlb.insert(1, 1, "a")
        assert tlb.invalidate(1, 1)
        assert not tlb.invalidate(1, 1)
        assert tlb.lookup(1, 1) is None

    def test_flush_space(self):
        tlb = TLB(8)
        tlb.insert(1, 1, "a")
        tlb.insert(1, 2, "b")
        tlb.insert(2, 1, "c")
        assert tlb.flush_space(1) == 2
        assert tlb.lookup(2, 1) == "c"
        assert tlb.lookup(1, 1) is None

    def test_flush_all(self):
        tlb = TLB(8)
        tlb.insert(1, 1, "a")
        tlb.flush()
        assert len(tlb) == 0
        assert tlb.stats.flushes == 1

    def test_r3000_default_size(self):
        assert TLB().n_entries == 64

    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            TLB(0)

    def test_hit_rate(self):
        tlb = TLB(4)
        tlb.insert(1, 1, "a")
        tlb.lookup(1, 1)
        tlb.lookup(1, 2)
        assert tlb.stats.hit_rate == 0.5
