"""Property tests for translation structures, the cache, and tallies."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cache import PhysicallyIndexedCache
from repro.hw.page_table import GlobalHashPageTable, Translation
from repro.hw.tlb import TLB
from repro.sim.stats import Tally

space_ids = st.integers(0, 3)
vpns = st.integers(0, 63)
ops = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup", "remove"]), space_ids, vpns),
    max_size=200,
)


@given(ops)
def test_hash_page_table_never_lies(operations):
    """The table may *forget* entries (direct-mapped, soft misses) but a
    hit must always return the most recently inserted translation."""
    pt = GlobalHashPageTable(n_entries=16, overflow_entries=4)
    model: dict[tuple[int, int], int] = {}
    counter = 0
    for op, space, vpn in operations:
        if op == "insert":
            counter += 1
            pt.insert(Translation(space, vpn, counter))
            model[(space, vpn)] = counter
        elif op == "remove":
            pt.remove(space, vpn)
            model.pop((space, vpn), None)
        else:
            entry = pt.lookup(space, vpn)
            if entry is not None:
                assert model.get((space, vpn)) == entry.pfn


@given(ops)
def test_tlb_never_lies_and_respects_capacity(operations):
    tlb = TLB(8)
    model: dict[tuple[int, int], int] = {}
    counter = 0
    for op, space, vpn in operations:
        if op == "insert":
            counter += 1
            tlb.insert(space, vpn, counter)
            model[(space, vpn)] = counter
        elif op == "remove":
            tlb.invalidate(space, vpn)
            model.pop((space, vpn), None)
        else:
            got = tlb.lookup(space, vpn)
            if got is not None:
                assert model.get((space, vpn)) == got
        assert len(tlb) <= 8


@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
def test_cache_hits_iff_line_most_recent_in_its_set(addresses):
    cache = PhysicallyIndexedCache(1024, line_size=16, page_size=256)
    resident: dict[int, int] = {}
    for addr in addresses:
        line = addr // 16
        idx = line % cache.n_lines
        expected_hit = resident.get(idx) == line
        assert cache.access(addr) == expected_hit
        resident[idx] = line
    assert cache.stats.accesses == len(addresses)
    assert cache.stats.hits + cache.stats.misses == len(addresses)


@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
@settings(max_examples=50)
def test_tally_summary_statistics(values):
    tally = Tally()
    for v in values:
        tally.record(v)
    assert tally.count == len(values)
    assert tally.maximum == max(values)
    assert tally.minimum == min(values)
    assert math.isclose(tally.mean, sum(values) / len(values), rel_tol=1e-9)
    assert tally.percentile(100) == max(values)
    # percentiles are monotone
    ps = [tally.percentile(p) for p in (0, 25, 50, 75, 100)]
    assert ps == sorted(ps)
