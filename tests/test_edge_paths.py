"""Edge paths not covered by the mainline suites."""

from __future__ import annotations

import pytest

from repro.core.api import (
    FrameDemand,
    MigratePagesRequest,
    ModifyPageFlagsRequest,
)
from repro.core.faults import FaultKind, PageFault
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.core.manager_api import SegmentManager
from repro.errors import UIOError
from repro.managers.base import GenericSegmentManager
from repro.managers.coloring_manager import ColoringSegmentManager
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import SystemPageCacheManager


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel, policy=ReservePolicy(0))
    return kernel, spcm


class TestAllocateRunFallback:
    def test_fragmented_stock_falls_back_to_singles(self, world):
        kernel, spcm = world
        manager = GenericSegmentManager(kernel, spcm, "frag", initial_frames=8)
        # fragment the stock: free slots 0..7; consume the even ones
        seg = kernel.create_segment(8, manager=manager)
        for even_slot in (0, 2, 4, 6):
            manager._free_slots.remove(even_slot)
            kernel.migrate_pages(
                MigratePagesRequest(
                    manager.free_segment, seg, even_slot, even_slot, 1
                )
            )
            manager._empty_slots.append(even_slot)
        # drain the SPCM so a contiguous refill is impossible
        available = spcm.available_frames()
        if available:
            sink = GenericSegmentManager(
                kernel, spcm, "sink", initial_frames=available
            )
            assert spcm.available_frames() == 0
        slots = manager.allocate_run(3)
        assert len(slots) == 3
        assert sorted(slots) != list(range(min(slots), min(slots) + 3))

    def test_run_of_one_is_trivial(self, world):
        kernel, spcm = world
        manager = GenericSegmentManager(kernel, spcm, "one", initial_frames=4)
        assert len(manager.allocate_run(1)) == 1


class TestUIOFailurePaths:
    def test_manager_that_never_provides_raises_uio_error(self, system):
        class BrokenManager(SegmentManager):
            def handle_fault(self, fault):
                pass  # resolves nothing

        kernel = system.kernel
        broken = BrokenManager(kernel, "broken")
        seg = kernel.create_segment(
            0, name="f", manager=broken, auto_grow=True
        )
        system.file_server.create_file(seg, data=b"x" * 4096)
        with pytest.raises(UIOError):
            system.uio.read(seg, 0, 4096)


class TestColoringNonMissingFaults:
    def test_protection_fault_uses_generic_path(self, world):
        kernel, spcm = world
        manager = ColoringSegmentManager(
            kernel, spcm, n_colors=4, frames_per_color=4
        )
        seg = kernel.create_segment(4, manager=manager)
        kernel.reference(seg, 0)
        kernel.modify_page_flags(
            ModifyPageFlagsRequest(
                seg, 0, 1, clear_flags=PageFlags.READ | PageFlags.WRITE
            )
        )
        kernel.reference(seg, 0)  # restored by the base protection policy
        flags = PageFlags(seg.pages[0].flags)
        assert PageFlags.READ in flags

    def test_cow_fault_through_coloring_manager(self, world):
        kernel, spcm = world
        manager = ColoringSegmentManager(
            kernel, spcm, n_colors=4, frames_per_color=8
        )
        source = kernel.create_segment(4, manager=manager)
        kernel.reference(source, 0, write=True)
        source.pages[0].write(b"base")
        shadow = kernel.create_segment(4, manager=manager, cow_source=source)
        frame = kernel.reference(shadow, 0, write=True)
        assert frame.read(0, 4) == b"base"


class TestManagerFaultKindsDirect:
    def test_direct_fault_injection_matches_reference_path(self, world):
        """Managers can be driven directly with PageFault objects (the
        UIO path does this); the outcome matches the reference path."""
        kernel, spcm = world
        manager = GenericSegmentManager(kernel, spcm, "direct", initial_frames=8)
        seg = kernel.create_segment(4, manager=manager)
        manager.handle_fault(
            PageFault(seg.seg_id, 2, FaultKind.MISSING_PAGE, write=False)
        )
        assert 2 in seg.pages
        frame = kernel.reference(seg, 2 * 4096)
        assert frame is seg.pages[2]


class TestReturnFramesEdge:
    def test_return_more_than_held_clamps(self, world):
        kernel, spcm = world
        manager = GenericSegmentManager(kernel, spcm, "clamp", initial_frames=4)
        assert manager.return_frames(100) == 4
        assert manager.return_frames(1) == 0

    def test_release_frames_with_nothing_resident(self, world):
        kernel, spcm = world
        manager = GenericSegmentManager(kernel, spcm, "bare", initial_frames=4)
        assert manager.release_frames(FrameDemand(10)).n_frames == 4
