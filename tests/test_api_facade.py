"""API v2 facade: payload round-trips, deprecation shims, topology checks.

This file is the *only* place the deprecated keyword call forms are
exercised on purpose; every other caller in the repo goes through the
typed request/result dataclasses of :mod:`repro.core.api`.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.api import (
    API_VERSION,
    BatchStats,
    FrameDemand,
    FrameGrant,
    GetPageAttributesRequest,
    GetPageAttributesResult,
    MigratePagesRequest,
    MigratePagesResult,
    ModifyPageFlagsRequest,
    ModifyPageFlagsResult,
    PageAttribute,
    SetSegmentManagerRequest,
    SetSegmentManagerResult,
    reset_legacy_warnings,
)
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.errors import HardwareError
from repro.hw.numa import NumaTopology
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.base import GenericSegmentManager
from repro.spcm.spcm import SystemPageCacheManager


class _NamedManager:
    """Just enough of a manager for the wire-form tests."""

    def __init__(self, name: str) -> None:
        self.name = name


class TestPayloadRoundTrips:
    """Every request/result survives to_payload -> from_payload."""

    def test_api_version(self):
        assert API_VERSION == (2, 0)

    def test_page_attribute(self):
        attr = PageAttribute(
            page=3,
            present=True,
            flags=PageFlags.READ | PageFlags.DIRTY,
            pfn=17,
            phys_addr=17 * 4096,
        )
        assert PageAttribute.from_payload(attr.to_payload()) == attr

    def test_page_attribute_absent(self):
        attr = PageAttribute(
            page=0, present=False, flags=PageFlags.NONE, pfn=None,
            phys_addr=None,
        )
        assert PageAttribute.from_payload(attr.to_payload()) == attr

    def test_batch_stats(self):
        stats = BatchStats(
            n_calls=2, n_pages=64, zero_fills=3, cow_copies=1,
            local_pages=48, remote_pages=16,
        )
        assert BatchStats.from_payload(stats.to_payload()) == stats

    def test_batch_stats_merged(self):
        a = BatchStats(n_calls=1, n_pages=8, local_pages=8)
        b = BatchStats(n_calls=2, n_pages=4, remote_pages=4, zero_fills=1)
        merged = a.merged(b)
        assert merged == BatchStats(
            n_calls=3, n_pages=12, zero_fills=1, local_pages=8,
            remote_pages=4,
        )

    def test_migrate_pages_request(self):
        req = MigratePagesRequest(
            src=1, dst=2, src_page=3, dst_page=4, n_pages=5,
            set_flags=PageFlags.PINNED, clear_flags=PageFlags.DIRTY,
            home_node=1,
        )
        assert MigratePagesRequest.from_payload(req.to_payload()) == req

    def test_migrate_pages_request_coerces_segments(self, kernel):
        seg = kernel.create_segment(1, name="coerce")
        req = MigratePagesRequest(seg, seg, 0, 0)
        assert req.src == seg.seg_id
        assert req.dst == seg.seg_id

    def test_migrate_pages_result(self):
        result = MigratePagesResult(
            moved_pfns=(9, 10, 11),
            batch=BatchStats(n_pages=3, local_pages=3),
        )
        assert MigratePagesResult.from_payload(result.to_payload()) == result
        assert result.n_pages == 3

    def test_modify_page_flags_request(self):
        req = ModifyPageFlagsRequest(
            segment=7, page=1, n_pages=2,
            set_flags=PageFlags.READ, clear_flags=PageFlags.REFERENCED,
        )
        assert ModifyPageFlagsRequest.from_payload(req.to_payload()) == req

    def test_modify_page_flags_result(self):
        result = ModifyPageFlagsResult(modified=5)
        assert (
            ModifyPageFlagsResult.from_payload(result.to_payload()) == result
        )

    def test_get_page_attributes_request(self):
        req = GetPageAttributesRequest(segment=4, page=0, n_pages=8)
        assert (
            GetPageAttributesRequest.from_payload(req.to_payload()) == req
        )

    def test_get_page_attributes_result(self):
        result = GetPageAttributesResult(
            attributes=(
                PageAttribute(0, True, PageFlags.READ, 1, 4096),
                PageAttribute(1, False, PageFlags.NONE, None, None),
            )
        )
        assert (
            GetPageAttributesResult.from_payload(result.to_payload())
            == result
        )

    def test_set_segment_manager_request(self):
        managers = {"dbms": _NamedManager("dbms")}
        req = SetSegmentManagerRequest(segment=9, manager=managers["dbms"])
        back = SetSegmentManagerRequest.from_payload(
            req.to_payload(), managers.__getitem__
        )
        assert back.segment == 9
        assert back.manager is managers["dbms"]

    def test_set_segment_manager_result(self):
        result = SetSegmentManagerResult(previous_manager="default")
        assert (
            SetSegmentManagerResult.from_payload(result.to_payload())
            == result
        )

    def test_frame_demand(self):
        demand = FrameDemand(n_frames=4, node=1, reason="loan-recall")
        assert FrameDemand.from_payload(demand.to_payload()) == demand

    def test_frame_demand_rejects_negative(self):
        with pytest.raises(ValueError):
            FrameDemand(-1)

    def test_frame_grant(self):
        grant = FrameGrant(pages=(2, 5, 7), node=0)
        assert FrameGrant.from_payload(grant.to_payload()) == grant
        assert grant.n_frames == 3
        assert grant

    def test_frame_grant_empty(self):
        grant = FrameGrant.empty()
        assert not grant
        assert grant.n_frames == 0
        assert FrameGrant.from_payload(grant.to_payload()) == grant


@pytest.fixture
def legacy_world(system):
    """A booted system with the warn-once registry reset around the test."""
    reset_legacy_warnings()
    kernel, spcm = system.kernel, system.spcm
    manager = GenericSegmentManager(
        kernel, spcm, "legacy", initial_frames=16
    )
    yield kernel, spcm, manager
    reset_legacy_warnings()


def _legacy_calls(record) -> list[warnings.WarningMessage]:
    return [
        w for w in record if issubclass(w.category, DeprecationWarning)
    ]


class TestDeprecationShims:
    """Each legacy keyword call form warns exactly once per process."""

    def test_modify_page_flags_warns_once(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        kernel.reference(seg, 0)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            kernel.modify_page_flags(
                seg, 0, 1, clear_flags=PageFlags.REFERENCED
            )
            kernel.modify_page_flags(
                seg, 0, 1, set_flags=PageFlags.REFERENCED
            )
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "ModifyPageFlagsRequest" in str(caught[0].message)

    def test_migrate_pages_warns_once_and_returns_frames(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        boot = kernel.initial_segment
        pages = sorted(boot.pages)[:2]
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            moved = kernel.migrate_pages(boot, seg, pages[0], 0, 1)
            kernel.migrate_pages(boot, seg, pages[1], 1, 1)
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "MigratePagesRequest" in str(caught[0].message)
        # the legacy form still returns the moved PageFrame list
        assert moved[0] is seg.pages[0]

    def test_get_page_attributes_warns_once(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            attrs = kernel.get_page_attributes(seg, 0, 4)
            kernel.get_page_attributes(seg, 0, 1)
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "GetPageAttributesRequest" in str(caught[0].message)
        assert len(attrs) == 4  # legacy form keeps the bare list

    def test_set_segment_manager_warns_once(self, legacy_world):
        kernel, spcm, manager = legacy_world
        other = GenericSegmentManager(
            kernel, spcm, "legacy-other", initial_frames=0
        )
        seg = kernel.create_segment(2, manager=manager)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            assert kernel.set_segment_manager(seg, other) is None
            kernel.set_segment_manager(seg, manager)
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "SetSegmentManagerRequest" in str(caught[0].message)

    def test_release_frames_warns_once(self, legacy_world):
        _, _, manager = legacy_world
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            freed = manager.release_frames(2)
            manager.release_frames(1)
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "FrameDemand" in str(caught[0].message)
        assert freed == 2  # legacy form keeps the bare count

    def test_on_frames_seized_warns_once(self, legacy_world):
        _, _, manager = legacy_world
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            manager.on_frames_seized([])
            manager.on_frames_seized([])
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "FrameGrant" in str(caught[0].message)

    def test_each_operation_warns_independently(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            kernel.get_page_attributes(seg, 0, 1)
            kernel.modify_page_flags(seg, 0, 1)
            kernel.get_page_attributes(seg, 0, 1)
        caught = _legacy_calls(record)
        assert len(caught) == 2

    def test_typed_forms_never_warn(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        kernel.reference(seg, 0)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            kernel.get_page_attributes(GetPageAttributesRequest(seg, 0, 4))
            kernel.modify_page_flags(
                ModifyPageFlagsRequest(
                    seg, 0, 1, clear_flags=PageFlags.REFERENCED
                )
            )
            manager.release_frames(FrameDemand(1))
            manager.on_frames_seized(FrameGrant.empty())
        assert _legacy_calls(record) == []


class TestTopologyValidation:
    """Node boundaries are checked wherever a topology meets a machine."""

    def test_for_memory_requires_divisible_size(self, memory):
        with pytest.raises(HardwareError):
            NumaTopology.for_memory(memory, 3)  # 4 MB does not split by 3

    def test_validate_for_rejects_short_topology(self, memory):
        bad = NumaTopology(n_nodes=2, node_bytes=memory.size_bytes // 4)
        with pytest.raises(HardwareError):
            bad.validate_for(memory)

    def test_kernel_rejects_mismatched_topology(self, memory):
        bad = NumaTopology(n_nodes=2, node_bytes=memory.size_bytes)
        with pytest.raises(HardwareError):
            Kernel(memory, topology=bad)

    def test_spcm_rejects_mismatched_topology(self, memory):
        kernel = Kernel(memory)
        bad = NumaTopology(n_nodes=4, node_bytes=memory.size_bytes)
        with pytest.raises(HardwareError):
            SystemPageCacheManager(kernel, topology=bad)

    def test_matching_topology_boots_sharded(self, memory):
        topology = NumaTopology.for_memory(memory, 2)
        kernel = Kernel(memory, topology=topology)
        spcm = SystemPageCacheManager(kernel)
        assert spcm.n_shards == 2
        assert [shard.node for shard in spcm.shards] == [0, 1]
