"""API v2 facade: payload round-trips, deprecation shims, topology checks.

This file is the *only* place the deprecated keyword call forms are
exercised on purpose; every other caller in the repo goes through the
typed request/result dataclasses of :mod:`repro.core.api`.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.api import (
    API_VERSION,
    AdmitTenantRequest,
    AdmitTenantResult,
    BatchMigratePagesRequest,
    BatchMigratePagesResult,
    BatchStats,
    FrameDemand,
    FrameGrant,
    GetPageAttributesRequest,
    GetPageAttributesResult,
    MigratePagesRequest,
    MigratePagesResult,
    ModifyPageFlagsRequest,
    ModifyPageFlagsResult,
    PageAttribute,
    RetryAfter,
    SetSegmentManagerRequest,
    SetSegmentManagerResult,
    TenantQuota,
    reset_legacy_warnings,
)
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.errors import HardwareError
from repro.hw.numa import NumaTopology
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.base import GenericSegmentManager
from repro.spcm.spcm import SystemPageCacheManager


class _NamedManager:
    """Just enough of a manager for the wire-form tests."""

    def __init__(self, name: str) -> None:
        self.name = name


class TestPayloadRoundTrips:
    """Every request/result survives to_payload -> from_payload."""

    def test_api_version(self):
        assert API_VERSION == (2, 1)

    def test_page_attribute(self):
        attr = PageAttribute(
            page=3,
            present=True,
            flags=PageFlags.READ | PageFlags.DIRTY,
            pfn=17,
            phys_addr=17 * 4096,
        )
        assert PageAttribute.from_payload(attr.to_payload()) == attr

    def test_page_attribute_absent(self):
        attr = PageAttribute(
            page=0, present=False, flags=PageFlags.NONE, pfn=None,
            phys_addr=None,
        )
        assert PageAttribute.from_payload(attr.to_payload()) == attr

    def test_batch_stats(self):
        stats = BatchStats(
            n_calls=2, n_pages=64, zero_fills=3, cow_copies=1,
            local_pages=48, remote_pages=16,
        )
        assert BatchStats.from_payload(stats.to_payload()) == stats

    def test_batch_stats_merged(self):
        a = BatchStats(n_calls=1, n_pages=8, local_pages=8)
        b = BatchStats(n_calls=2, n_pages=4, remote_pages=4, zero_fills=1)
        merged = a.merged(b)
        assert merged == BatchStats(
            n_calls=3, n_pages=12, zero_fills=1, local_pages=8,
            remote_pages=4,
        )

    def test_migrate_pages_request(self):
        req = MigratePagesRequest(
            src=1, dst=2, src_page=3, dst_page=4, n_pages=5,
            set_flags=PageFlags.PINNED, clear_flags=PageFlags.DIRTY,
            home_node=1,
        )
        assert MigratePagesRequest.from_payload(req.to_payload()) == req

    def test_migrate_pages_request_coerces_segments(self, kernel):
        seg = kernel.create_segment(1, name="coerce")
        req = MigratePagesRequest(seg, seg, 0, 0)
        assert req.src == seg.seg_id
        assert req.dst == seg.seg_id

    def test_migrate_pages_result(self):
        result = MigratePagesResult(
            moved_pfns=(9, 10, 11),
            batch=BatchStats(n_pages=3, local_pages=3),
        )
        assert MigratePagesResult.from_payload(result.to_payload()) == result
        assert result.n_pages == 3

    def test_modify_page_flags_request(self):
        req = ModifyPageFlagsRequest(
            segment=7, page=1, n_pages=2,
            set_flags=PageFlags.READ, clear_flags=PageFlags.REFERENCED,
        )
        assert ModifyPageFlagsRequest.from_payload(req.to_payload()) == req

    def test_modify_page_flags_result(self):
        result = ModifyPageFlagsResult(modified=5)
        assert (
            ModifyPageFlagsResult.from_payload(result.to_payload()) == result
        )

    def test_get_page_attributes_request(self):
        req = GetPageAttributesRequest(segment=4, page=0, n_pages=8)
        assert (
            GetPageAttributesRequest.from_payload(req.to_payload()) == req
        )

    def test_get_page_attributes_result(self):
        result = GetPageAttributesResult(
            attributes=(
                PageAttribute(0, True, PageFlags.READ, 1, 4096),
                PageAttribute(1, False, PageFlags.NONE, None, None),
            )
        )
        assert (
            GetPageAttributesResult.from_payload(result.to_payload())
            == result
        )

    def test_set_segment_manager_request(self):
        managers = {"dbms": _NamedManager("dbms")}
        req = SetSegmentManagerRequest(segment=9, manager=managers["dbms"])
        back = SetSegmentManagerRequest.from_payload(
            req.to_payload(), managers.__getitem__
        )
        assert back.segment == 9
        assert back.manager is managers["dbms"]

    def test_set_segment_manager_result(self):
        result = SetSegmentManagerResult(previous_manager="default")
        assert (
            SetSegmentManagerResult.from_payload(result.to_payload())
            == result
        )

    def test_frame_demand(self):
        demand = FrameDemand(n_frames=4, node=1, reason="loan-recall")
        assert FrameDemand.from_payload(demand.to_payload()) == demand

    def test_frame_demand_rejects_negative(self):
        with pytest.raises(ValueError):
            FrameDemand(-1)

    def test_frame_grant(self):
        grant = FrameGrant(pages=(2, 5, 7), node=0)
        assert FrameGrant.from_payload(grant.to_payload()) == grant
        assert grant.n_frames == 3
        assert grant

    def test_frame_grant_empty(self):
        grant = FrameGrant.empty()
        assert not grant
        assert grant.n_frames == 0
        assert FrameGrant.from_payload(grant.to_payload()) == grant

    # -- the v2.1 serving vocabulary ------------------------------------

    def test_batch_migrate_pages_request(self):
        req = BatchMigratePagesRequest(
            requests=(
                MigratePagesRequest(1, 2, 0, 0, 4, home_node=0),
                MigratePagesRequest(1, 2, 8, 4, 2, home_node=1),
            )
        )
        assert (
            BatchMigratePagesRequest.from_payload(req.to_payload()) == req
        )
        assert req.n_requests == 2
        assert req.n_pages == 6

    def test_batch_migrate_pages_request_coerces_tuple(self):
        req = BatchMigratePagesRequest(
            requests=[MigratePagesRequest(1, 2, 0, 0, 1)]  # type: ignore[arg-type]
        )
        assert type(req.requests) is tuple

    def test_batch_migrate_pages_result(self):
        result = BatchMigratePagesResult(
            moved_pfns=(3, 4, 5),
            batch=BatchStats(n_calls=2, n_pages=3, local_pages=3),
            n_requests=2,
        )
        assert (
            BatchMigratePagesResult.from_payload(result.to_payload())
            == result
        )
        assert result.n_pages == 3

    def test_retry_after(self):
        shed = RetryAfter(
            tenant="tenant-3", retry_after_us=1500.0, reason="backpressure"
        )
        assert RetryAfter.from_payload(shed.to_payload()) == shed

    def test_retry_after_rejects_negative(self):
        with pytest.raises(ValueError):
            RetryAfter("t", -1.0)

    def test_tenant_quota(self):
        quota = TenantQuota(account="tenant-0", frames=16, dram_mb=0.0625)
        assert TenantQuota.from_payload(quota.to_payload()) == quota

    def test_tenant_quota_unlimited_axes(self):
        quota = TenantQuota(account="tenant-1")
        assert quota.frames is None and quota.dram_mb is None
        assert TenantQuota.from_payload(quota.to_payload()) == quota

    def test_tenant_quota_rejects_negative(self):
        with pytest.raises(ValueError):
            TenantQuota("t", frames=-1)
        with pytest.raises(ValueError):
            TenantQuota("t", dram_mb=-0.5)

    def test_admit_tenant_request(self):
        req = AdmitTenantRequest(
            tenant="tenant-7",
            home_node=1,
            working_set_pages=32,
            quota=TenantQuota("tenant-7", frames=8),
        )
        assert AdmitTenantRequest.from_payload(req.to_payload()) == req

    def test_admit_tenant_request_no_quota(self):
        req = AdmitTenantRequest(tenant="solo")
        assert AdmitTenantRequest.from_payload(req.to_payload()) == req

    def test_admit_tenant_request_rejects_bad_args(self):
        with pytest.raises(ValueError):
            AdmitTenantRequest(tenant="")
        with pytest.raises(ValueError):
            AdmitTenantRequest(tenant="t", working_set_pages=0)

    def test_admit_tenant_result_admitted(self):
        result = AdmitTenantResult(
            admitted=True, tenant="tenant-2", account="tenant-2", home_node=0
        )
        assert AdmitTenantResult.from_payload(result.to_payload()) == result

    def test_admit_tenant_result_shed(self):
        result = AdmitTenantResult(
            admitted=False,
            tenant="tenant-9",
            retry_after=RetryAfter("tenant-9", 250.0, reason="capacity"),
        )
        assert AdmitTenantResult.from_payload(result.to_payload()) == result


@pytest.fixture
def legacy_world(system):
    """A booted system with the warn-once registry reset around the test."""
    reset_legacy_warnings()
    kernel, spcm = system.kernel, system.spcm
    manager = GenericSegmentManager(
        kernel, spcm, "legacy", initial_frames=16
    )
    yield kernel, spcm, manager
    reset_legacy_warnings()


def _legacy_calls(record) -> list[warnings.WarningMessage]:
    return [
        w for w in record if issubclass(w.category, DeprecationWarning)
    ]


class TestDeprecationShims:
    """Each legacy keyword call form warns exactly once per process."""

    def test_modify_page_flags_warns_once(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        kernel.reference(seg, 0)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            kernel.modify_page_flags(
                seg, 0, 1, clear_flags=PageFlags.REFERENCED
            )
            kernel.modify_page_flags(
                seg, 0, 1, set_flags=PageFlags.REFERENCED
            )
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "ModifyPageFlagsRequest" in str(caught[0].message)

    def test_migrate_pages_warns_once_and_returns_frames(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        boot = kernel.initial_segment
        pages = sorted(boot.pages)[:2]
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            moved = kernel.migrate_pages(boot, seg, pages[0], 0, 1)
            kernel.migrate_pages(boot, seg, pages[1], 1, 1)
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "MigratePagesRequest" in str(caught[0].message)
        # the legacy form still returns the moved PageFrame list
        assert moved[0] is seg.pages[0]

    def test_migrate_pages_batch_list_warns_once(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        boot = kernel.initial_segment
        pages = sorted(boot.pages)[:2]
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            result = kernel.migrate_pages_batch(
                [MigratePagesRequest(boot, seg, pages[0], 0, 1)]
            )
            kernel.migrate_pages_batch(
                [MigratePagesRequest(boot, seg, pages[1], 1, 1)]
            )
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "BatchMigratePagesRequest" in str(caught[0].message)
        # the legacy list form keeps the v2.0 MigratePagesResult
        assert isinstance(result, MigratePagesResult)
        assert result.n_pages == 1

    def test_migrate_pages_batch_typed_form(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        boot = kernel.initial_segment
        pages = sorted(boot.pages)[:2]
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            result = kernel.migrate_pages_batch(
                BatchMigratePagesRequest(
                    (
                        MigratePagesRequest(boot, seg, pages[0], 0, 1),
                        MigratePagesRequest(boot, seg, pages[1], 1, 1),
                    )
                )
            )
        assert _legacy_calls(record) == []
        assert isinstance(result, BatchMigratePagesResult)
        assert result.n_requests == 2
        assert result.n_pages == 2
        assert result.batch.n_calls == 2

    def test_migrate_pages_batch_typed_empty(self, legacy_world):
        kernel, _, _ = legacy_world
        result = kernel.migrate_pages_batch(BatchMigratePagesRequest(()))
        assert isinstance(result, BatchMigratePagesResult)
        assert result.n_pages == 0
        assert result.n_requests == 0

    def test_get_page_attributes_warns_once(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            attrs = kernel.get_page_attributes(seg, 0, 4)
            kernel.get_page_attributes(seg, 0, 1)
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "GetPageAttributesRequest" in str(caught[0].message)
        assert len(attrs) == 4  # legacy form keeps the bare list

    def test_set_segment_manager_warns_once(self, legacy_world):
        kernel, spcm, manager = legacy_world
        other = GenericSegmentManager(
            kernel, spcm, "legacy-other", initial_frames=0
        )
        seg = kernel.create_segment(2, manager=manager)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            assert kernel.set_segment_manager(seg, other) is None
            kernel.set_segment_manager(seg, manager)
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "SetSegmentManagerRequest" in str(caught[0].message)

    def test_release_frames_warns_once(self, legacy_world):
        _, _, manager = legacy_world
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            freed = manager.release_frames(2)
            manager.release_frames(1)
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "FrameDemand" in str(caught[0].message)
        assert freed == 2  # legacy form keeps the bare count

    def test_on_frames_seized_warns_once(self, legacy_world):
        _, _, manager = legacy_world
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            manager.on_frames_seized([])
            manager.on_frames_seized([])
        caught = _legacy_calls(record)
        assert len(caught) == 1
        assert "FrameGrant" in str(caught[0].message)

    def test_each_operation_warns_independently(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            kernel.get_page_attributes(seg, 0, 1)
            kernel.modify_page_flags(seg, 0, 1)
            kernel.get_page_attributes(seg, 0, 1)
        caught = _legacy_calls(record)
        assert len(caught) == 2

    def test_typed_forms_never_warn(self, legacy_world):
        kernel, _, manager = legacy_world
        seg = kernel.create_segment(4, manager=manager)
        kernel.reference(seg, 0)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            kernel.get_page_attributes(GetPageAttributesRequest(seg, 0, 4))
            kernel.modify_page_flags(
                ModifyPageFlagsRequest(
                    seg, 0, 1, clear_flags=PageFlags.REFERENCED
                )
            )
            manager.release_frames(FrameDemand(1))
            manager.on_frames_seized(FrameGrant.empty())
        assert _legacy_calls(record) == []


class TestTopologyValidation:
    """Node boundaries are checked wherever a topology meets a machine."""

    def test_for_memory_requires_divisible_size(self, memory):
        with pytest.raises(HardwareError):
            NumaTopology.for_memory(memory, 3)  # 4 MB does not split by 3

    def test_validate_for_rejects_short_topology(self, memory):
        bad = NumaTopology(n_nodes=2, node_bytes=memory.size_bytes // 4)
        with pytest.raises(HardwareError):
            bad.validate_for(memory)

    def test_kernel_rejects_mismatched_topology(self, memory):
        bad = NumaTopology(n_nodes=2, node_bytes=memory.size_bytes)
        with pytest.raises(HardwareError):
            Kernel(memory, topology=bad)

    def test_spcm_rejects_mismatched_topology(self, memory):
        kernel = Kernel(memory)
        bad = NumaTopology(n_nodes=4, node_bytes=memory.size_bytes)
        with pytest.raises(HardwareError):
            SystemPageCacheManager(kernel, topology=bad)

    def test_matching_topology_boots_sharded(self, memory):
        topology = NumaTopology.for_memory(memory, 2)
        kernel = Kernel(memory, topology=topology)
        spcm = SystemPageCacheManager(kernel)
        assert spcm.n_shards == 2
        assert [shard.node for shard in spcm.shards] == [0, 1]
