"""Physical memory and page frames."""

from __future__ import annotations

import pytest

from repro.errors import PhysicalMemoryError
from repro.hw.phys_mem import PageFrame, PhysicalMemory


class TestPageFrame:
    def frame(self) -> PageFrame:
        return PageFrame(pfn=3, page_size=4096, phys_addr=3 * 4096)

    def test_reads_zero_before_any_write(self):
        f = self.frame()
        assert f.read() == bytes(4096)
        assert not f.is_materialized

    def test_write_then_read_roundtrip(self):
        f = self.frame()
        f.write(b"hello", offset=100)
        assert f.read(100, 5) == b"hello"
        assert f.read(99, 1) == b"\x00"
        assert f.is_materialized

    def test_partial_read_defaults_to_rest_of_page(self):
        f = self.frame()
        f.write(b"x" * 4096)
        assert len(f.read(4000)) == 96

    def test_zero_drops_contents(self):
        f = self.frame()
        f.write(b"data")
        f.zero()
        assert f.read(0, 4) == b"\x00\x00\x00\x00"
        assert not f.is_materialized

    def test_copy_from_copies_bytes(self):
        a, b = self.frame(), PageFrame(4, 4096, 4 * 4096)
        a.write(b"abc")
        b.copy_from(a)
        assert b.read(0, 3) == b"abc"
        a.write(b"zzz")
        assert b.read(0, 3) == b"abc"  # deep copy

    def test_copy_from_unmaterialized_source_zeroes(self):
        a, b = self.frame(), PageFrame(4, 4096, 4 * 4096)
        b.write(b"junk")
        b.copy_from(a)
        assert b.read(0, 4) == bytes(4)

    def test_copy_size_mismatch_rejected(self):
        a = self.frame()
        big = PageFrame(9, 16384, 0)
        with pytest.raises(PhysicalMemoryError):
            big.copy_from(a)

    def test_out_of_range_access_rejected(self):
        f = self.frame()
        with pytest.raises(PhysicalMemoryError):
            f.read(4000, 200)
        with pytest.raises(PhysicalMemoryError):
            f.write(b"x" * 10, offset=4090)
        with pytest.raises(PhysicalMemoryError):
            f.read(-1, 2)

    def test_color_is_frame_number_mod_colors(self):
        f = PageFrame(pfn=0, page_size=4096, phys_addr=5 * 4096)
        assert f.color(4) == 1
        assert f.color(16) == 5
        with pytest.raises(ValueError):
            f.color(0)


class TestPhysicalMemory:
    def test_frames_created_in_physical_order(self, memory):
        assert memory.n_frames == 1024
        addrs = [f.phys_addr for f in memory.frames()]
        assert addrs == sorted(addrs)
        assert memory.frame(10).phys_addr == 10 * 4096

    def test_size_must_be_page_multiple(self):
        with pytest.raises(PhysicalMemoryError):
            PhysicalMemory(4097)
        with pytest.raises(PhysicalMemoryError):
            PhysicalMemory(0)

    def test_large_pools_follow_base_frames(self):
        mem = PhysicalMemory(8 * 4096, large_pools={16384: 2})
        assert mem.n_frames == 10
        big = mem.frames_of_size(16384)
        assert len(big) == 2
        assert big[0].phys_addr == 8 * 4096
        assert big[1].phys_addr == 8 * 4096 + 16384
        assert mem.size_bytes == 8 * 4096 + 2 * 16384

    def test_large_pool_must_be_larger_multiple(self):
        with pytest.raises(PhysicalMemoryError):
            PhysicalMemory(4 * 4096, large_pools={4096: 1})
        with pytest.raises(PhysicalMemoryError):
            PhysicalMemory(4 * 4096, large_pools={5000: 1})

    def test_frame_lookup_bounds(self, memory):
        with pytest.raises(PhysicalMemoryError):
            memory.frame(-1)
        with pytest.raises(PhysicalMemoryError):
            memory.frame(1024)

    def test_frames_in_addr_range(self, memory):
        frames = memory.frames_in_addr_range(8192, 16384)
        assert [f.pfn for f in frames] == [2, 3]

    def test_frame_at_addr(self, memory):
        assert memory.frame_at_addr(4096 * 5 + 123).pfn == 5
        with pytest.raises(PhysicalMemoryError):
            memory.frame_at_addr(memory.size_bytes)
