"""The kernel: segment lifecycle, the four operations, conservation."""

from __future__ import annotations

import pytest

from repro.core.api import (
    GetPageAttributesRequest,
    MigratePagesRequest,
    ModifyPageFlagsRequest,
    SetSegmentManagerRequest,
)
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.core.manager_api import SegmentManager
from repro.errors import (
    MigrationError,
    ProtectionError,
    SegmentError,
)
from repro.hw.phys_mem import PhysicalMemory


@pytest.fixture
def bare_kernel(memory) -> Kernel:
    return Kernel(memory)


class NullManager(SegmentManager):
    """A manager that records faults but resolves nothing."""

    def __init__(self, kernel):
        super().__init__(kernel, "null")
        self.faults = []

    def handle_fault(self, fault):
        self.faults.append(fault)


class TestBoot:
    def test_all_frames_in_boot_segment(self, bare_kernel, memory):
        boot = bare_kernel.initial_segment
        assert boot is not None
        assert boot.resident_pages == memory.n_frames
        # in order of physical address (S2.1)
        for page, frame in sorted(boot.pages.items()):
            assert frame.phys_addr == page * 4096

    def test_boot_segments_per_page_size(self):
        memory = PhysicalMemory(8 * 4096, large_pools={16384: 2})
        kernel = Kernel(memory)
        assert set(kernel.boot_segments) == {4096, 16384}
        assert kernel.boot_segments[16384].resident_pages == 2

    def test_conservation_at_boot(self, bare_kernel):
        bare_kernel.check_frame_conservation()


class TestSegmentLifecycle:
    def test_create_and_lookup(self, bare_kernel):
        seg = bare_kernel.create_segment(8, name="s")
        assert bare_kernel.segment(seg.seg_id) is seg
        assert seg in bare_kernel.segments()

    def test_unknown_segment(self, bare_kernel):
        with pytest.raises(SegmentError):
            bare_kernel.segment(999)

    def test_cow_source_page_size_must_match(self, bare_kernel):
        src = bare_kernel.create_segment(4)
        with pytest.raises(SegmentError):
            bare_kernel.create_segment(4, page_size=16384, cow_source=src)

    def test_delete_sweeps_frames_back(self, bare_kernel):
        boot = bare_kernel.initial_segment
        seg = bare_kernel.create_segment(4, name="dying")
        bare_kernel.migrate_pages(MigratePagesRequest(boot, seg, 0, 0, 2))
        before = boot.resident_pages
        bare_kernel.delete_segment(seg)
        assert boot.resident_pages == before + 2
        bare_kernel.check_frame_conservation()
        with pytest.raises(SegmentError):
            bare_kernel.segment(seg.seg_id)

    def test_delete_notifies_manager(self, bare_kernel):
        manager = NullManager(bare_kernel)
        seg = bare_kernel.create_segment(4, manager=manager)
        calls_before = bare_kernel.stats.manager_calls.get("null", 0)
        deleted = []
        manager.segment_deleted = lambda s: deleted.append(s)  # type: ignore[method-assign]
        bare_kernel.delete_segment(seg)
        assert deleted == [seg]
        assert bare_kernel.stats.manager_calls["null"] == calls_before + 1

    def test_double_delete_rejected(self, bare_kernel):
        seg = bare_kernel.create_segment(4)
        bare_kernel.delete_segment(seg)
        with pytest.raises(SegmentError):
            bare_kernel.delete_segment(seg)

    def test_delete_of_bound_target_refused(self, bare_kernel):
        """A segment still bound into an address space cannot vanish."""
        data = bare_kernel.create_segment(4, name="data")
        vas = bare_kernel.create_segment(8, name="vas")
        binding = vas.bind(0, 4, data, 0)
        with pytest.raises(SegmentError):
            bare_kernel.delete_segment(data)
        vas.unbind(binding)
        bare_kernel.delete_segment(data)  # fine once unbound

    def test_delete_of_cow_source_refused(self, bare_kernel):
        source = bare_kernel.create_segment(4, name="src")
        shadow = bare_kernel.create_segment(
            4, name="shadow", cow_source=source
        )
        with pytest.raises(SegmentError):
            bare_kernel.delete_segment(source)
        bare_kernel.delete_segment(shadow)
        bare_kernel.delete_segment(source)  # fine once the shadow is gone


class TestSetSegmentManager:
    def test_manager_assignment_and_tracking(self, bare_kernel):
        m1, m2 = NullManager(bare_kernel), NullManager(bare_kernel)
        m2.name = "null2"
        seg = bare_kernel.create_segment(4)
        bare_kernel.set_segment_manager(SetSegmentManagerRequest(seg, m1))
        assert seg.manager is m1
        assert seg.seg_id in m1.managed
        bare_kernel.set_segment_manager(SetSegmentManagerRequest(seg, m2))
        assert seg.seg_id not in m1.managed
        assert seg.seg_id in m2.managed

    def test_charges_meter(self, bare_kernel):
        seg = bare_kernel.create_segment(4)
        before = bare_kernel.meter.total_us
        bare_kernel.set_segment_manager(
            SetSegmentManagerRequest(seg, NullManager(bare_kernel))
        )
        assert bare_kernel.meter.total_us > before


class TestMigratePages:
    def test_moves_frames_and_updates_ownership(self, bare_kernel):
        boot = bare_kernel.initial_segment
        seg = bare_kernel.create_segment(8)
        result = bare_kernel.migrate_pages(
            MigratePagesRequest(boot, seg, 10, 2, 3)
        )
        assert result.n_pages == 3
        for i, pfn in enumerate(result.moved_pfns):
            frame = seg.pages[2 + i]
            assert frame.pfn == pfn
            assert frame.owner_segment_id == seg.seg_id
            assert frame.page_index == 2 + i
            assert 10 + i not in boot.pages
        bare_kernel.check_frame_conservation()

    def test_flags_set_and_cleared(self, bare_kernel):
        boot = bare_kernel.initial_segment
        seg = bare_kernel.create_segment(4)
        boot.pages[0].flags = int(PageFlags.rw() | PageFlags.DIRTY)
        bare_kernel.migrate_pages(
            MigratePagesRequest(
                boot,
                seg,
                0,
                0,
                1,
                set_flags=PageFlags.REFERENCED,
                clear_flags=PageFlags.DIRTY,
            )
        )
        flags = PageFlags(seg.pages[0].flags)
        assert PageFlags.REFERENCED in flags
        assert PageFlags.DIRTY not in flags

    def test_source_page_must_be_backed(self, bare_kernel):
        a = bare_kernel.create_segment(4)
        b = bare_kernel.create_segment(4)
        with pytest.raises(MigrationError):
            bare_kernel.migrate_pages(MigratePagesRequest(a, b, 0, 0, 1))

    def test_destination_must_be_empty(self, bare_kernel):
        boot = bare_kernel.initial_segment
        seg = bare_kernel.create_segment(4)
        bare_kernel.migrate_pages(MigratePagesRequest(boot, seg, 0, 0, 1))
        with pytest.raises(MigrationError):
            bare_kernel.migrate_pages(MigratePagesRequest(boot, seg, 1, 0, 1))

    def test_validation_happens_before_mutation(self, bare_kernel):
        boot = bare_kernel.initial_segment
        seg = bare_kernel.create_segment(4)
        bare_kernel.migrate_pages(MigratePagesRequest(boot, seg, 0, 2, 1))  # occupy page 2
        with pytest.raises(MigrationError):
            bare_kernel.migrate_pages(MigratePagesRequest(boot, seg, 1, 1, 2))  # 2 collides
        assert 1 not in seg.pages  # nothing moved
        bare_kernel.check_frame_conservation()

    def test_page_size_mismatch(self):
        memory = PhysicalMemory(8 * 4096, large_pools={16384: 2})
        kernel = Kernel(memory)
        small = kernel.create_segment(4)
        big = kernel.create_segment(4, page_size=16384)
        with pytest.raises(MigrationError):
            kernel.migrate_pages(
                MigratePagesRequest(kernel.boot_segments[4096], big, 0, 0, 1)
            )
        with pytest.raises(MigrationError):
            kernel.migrate_pages(
                MigratePagesRequest(kernel.boot_segments[16384], small, 0, 0, 1)
            )

    def test_migration_into_read_only_segment_is_a_write(self, bare_kernel):
        """Migrating a frame to a segment is a write for protection (S2.1)."""
        ro = bare_kernel.create_segment(4, prot=PageFlags.READ)
        with pytest.raises(ProtectionError):
            bare_kernel.migrate_pages(
                MigratePagesRequest(bare_kernel.initial_segment, ro, 0, 0, 1)
            )

    def test_auto_grow_destination(self, bare_kernel):
        boot = bare_kernel.initial_segment
        seg = bare_kernel.create_segment(0, auto_grow=True)
        bare_kernel.migrate_pages(MigratePagesRequest(boot, seg, 0, 5, 2))
        assert seg.n_pages == 7

    def test_zero_fill_flag_zeroes_in_transit(self, bare_kernel):
        boot = bare_kernel.initial_segment
        seg = bare_kernel.create_segment(4)
        frame = boot.pages[0]
        frame.write(b"secret")
        frame.flags |= int(PageFlags.ZERO_FILL)
        zero_charges = bare_kernel.meter.by_category.get("zero_fill", 0.0)
        bare_kernel.migrate_pages(MigratePagesRequest(boot, seg, 0, 0, 1))
        assert frame.read(0, 6) == bytes(6)
        assert not PageFlags.ZERO_FILL & PageFlags(frame.flags)
        assert bare_kernel.meter.by_category["zero_fill"] > zero_charges
        assert bare_kernel.stats.zero_fills == 1

    def test_no_zeroing_without_flag(self, bare_kernel):
        """V++ does not zero on same-user reallocation --- the 75us the
        paper saves over ULTRIX."""
        boot = bare_kernel.initial_segment
        seg = bare_kernel.create_segment(4)
        boot.pages[0].write(b"keep")
        bare_kernel.migrate_pages(MigratePagesRequest(boot, seg, 0, 0, 1))
        assert seg.pages[0].read(0, 4) == b"keep"
        assert bare_kernel.stats.zero_fills == 0

    def test_unsupported_flags_rejected(self, bare_kernel):
        seg = bare_kernel.create_segment(4)
        with pytest.raises(MigrationError):
            bare_kernel.migrate_pages(
                MigratePagesRequest(
                    bare_kernel.initial_segment,
                    seg,
                    0,
                    0,
                    1,
                    set_flags=PageFlags(1 << 12),
                )
            )

    def test_stats_and_attribution(self, bare_kernel):
        seg = bare_kernel.create_segment(8)
        with bare_kernel.attribute("someone"):
            bare_kernel.migrate_pages(
                MigratePagesRequest(bare_kernel.initial_segment, seg, 0, 0, 4)
            )
        assert bare_kernel.stats.migrate_calls == 1
        assert bare_kernel.stats.pages_migrated == 4
        assert bare_kernel.stats.migrate_calls_by_manager["someone"] == 1


class TestModifyPageFlags:
    def test_modifies_present_pages_only(self, bare_kernel):
        seg = bare_kernel.create_segment(8)
        bare_kernel.migrate_pages(
            MigratePagesRequest(bare_kernel.initial_segment, seg, 0, 0, 2)
        )
        result = bare_kernel.modify_page_flags(
            ModifyPageFlagsRequest(seg, 0, 8, set_flags=PageFlags.PINNED)
        )
        assert result.modified == 2
        assert PageFlags.PINNED & PageFlags(seg.pages[0].flags)

    def test_rejects_unsupported_flags(self, bare_kernel):
        seg = bare_kernel.create_segment(4)
        with pytest.raises(SegmentError):
            bare_kernel.modify_page_flags(
                ModifyPageFlagsRequest(seg, 0, 1, set_flags=PageFlags(1 << 12))
            )

    def test_range_checked(self, bare_kernel):
        seg = bare_kernel.create_segment(4)
        with pytest.raises(SegmentError):
            bare_kernel.modify_page_flags(ModifyPageFlagsRequest(seg, 2, 4))


class TestGetPageAttributes:
    def test_reports_presence_flags_and_physical_address(self, bare_kernel):
        """Physical addresses are exported deliberately --- they enable
        page coloring and placement control (S1)."""
        seg = bare_kernel.create_segment(4)
        bare_kernel.migrate_pages(
            MigratePagesRequest(bare_kernel.initial_segment, seg, 3, 1, 1)
        )
        attrs = bare_kernel.get_page_attributes(
            GetPageAttributesRequest(seg, 0, 3)
        ).attributes
        assert [a.page for a in attrs] == [0, 1, 2]
        assert not attrs[0].present and attrs[0].pfn is None
        assert attrs[1].present
        assert attrs[1].pfn == seg.pages[1].pfn
        assert attrs[1].phys_addr == seg.pages[1].phys_addr
        assert bare_kernel.stats.get_attributes_calls == 1
