"""Critical-path analysis: attribution conservation and dominant chains.

The load-bearing property: :func:`repro.obs.critical_path.attribute`
decomposes a root span's duration into component buckets that sum
**exactly** to the root duration --- for synthetic trees, for real traced
Figure-2 faults and failovers, and for hypothesis-generated random trees.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_system
from repro.obs import SpanRecord, Tracer, TraceStep
from repro.obs.critical_path import (
    BUCKET_ORDER,
    SpanTree,
    analyze,
    attribute,
    classify_event,
    classify_span,
    critical_path,
    render_attribution,
    render_critical_path,
)


def _span(sid, parent, component, op, start, end):
    return SpanRecord(sid, parent, component, op, start, end)


def _tree():
    """root(0..100) -> kernel(10..90) -> {manager(20..50), disk(50..85)}"""
    return [
        _span(1, None, "application", "page_fault", 0.0, 100.0),
        _span(2, 1, "kernel", "dispatch_fault", 10.0, 90.0),
        _span(3, 2, "manager", "handle_fault", 20.0, 50.0),
        _span(4, 2, "file_server", "fetch_page", 50.0, 85.0),
    ]


class TestSpanTree:
    def test_children_and_self_time(self):
        tree = SpanTree(_tree())
        root = tree.by_id[1]
        assert [s.span_id for s in tree.children(root)] == [2]
        assert tree.self_us(root) == pytest.approx(20.0)  # 100 - 80
        assert tree.self_us(tree.by_id[2]) == pytest.approx(15.0)
        assert tree.self_us(tree.by_id[3]) == pytest.approx(30.0)

    def test_walk_visits_every_span_once(self):
        tree = SpanTree(_tree())
        visited = [s.span_id for s in tree.walk(tree.by_id[1])]
        assert sorted(visited) == [1, 2, 3, 4]

    def test_replayed_orphans_become_roots(self):
        # a truncated JSONL replay may lack the parent span entirely
        spans = [_span(7, 99, "kernel", "dispatch_fault", 0.0, 10.0)]
        tree = SpanTree(spans)
        assert [s.span_id for s in tree.roots()] == [7]


class TestClassification:
    def test_span_components_map_to_buckets(self):
        assert classify_span(_span(1, None, "tlb", "miss", 0, 1)) == "kernel"
        assert classify_span(_span(1, None, "spcm", "grant", 0, 1)) == "manager"
        assert classify_span(_span(1, None, "uio", "read", 0, 1)) == "disk"
        assert classify_span(_span(1, None, "mystery", "x", 0, 1)) == "other"

    def test_event_actors_map_or_pass(self):
        assert classify_event(TraceStep(1, "ipc", "msg")) == "ipc"
        assert classify_event(TraceStep(1, "zeroing", "zero")) == "zeroing"
        assert classify_event(TraceStep(1, "manager", "noise")) is None


class TestAttributionSynthetic:
    def test_buckets_sum_to_root_duration(self):
        tree = SpanTree(_tree())
        a = attribute(tree, [], tree.by_id[1])
        assert a.total_us == pytest.approx(100.0)
        assert a.buckets["kernel"] == pytest.approx(35.0)  # 20 + 15
        assert a.buckets["manager"] == pytest.approx(30.0)
        assert a.buckets["disk"] == pytest.approx(35.0)

    def test_events_reattribute_slices_of_self_time(self):
        tree = SpanTree(_tree())
        events = [
            TraceStep(1, "ipc", "fault message", cost_us=10.0, span_id=2),
            TraceStep(2, "zeroing", "zero-fill", cost_us=5.0, span_id=3),
        ]
        a = attribute(tree, events, tree.by_id[1])
        assert a.total_us == pytest.approx(100.0)  # conservation holds
        assert a.buckets["ipc"] == pytest.approx(10.0)
        assert a.buckets["zeroing"] == pytest.approx(5.0)
        assert a.buckets["kernel"] == pytest.approx(25.0)  # 35 - 10
        assert a.buckets["manager"] == pytest.approx(25.0)  # 30 - 5

    def test_event_slices_clamped_to_self_time(self):
        tree = SpanTree(_tree())
        # claims far more than span 2's 15us of self-time: clamped, so
        # the total still equals the root duration
        events = [
            TraceStep(1, "ipc", "storm", cost_us=1e6, span_id=2),
        ]
        a = attribute(tree, events, tree.by_id[1])
        assert a.total_us == pytest.approx(100.0)
        assert a.buckets["ipc"] == pytest.approx(15.0)

    def test_share_is_fraction_of_root(self):
        tree = SpanTree(_tree())
        a = attribute(tree, [], tree.by_id[1])
        assert a.share("disk") == pytest.approx(0.35)
        assert a.share("absent") == 0.0


class TestCriticalPathSynthetic:
    def test_follows_dominant_children(self):
        tree = SpanTree(_tree())
        path = critical_path(tree, tree.by_id[1])
        # disk (35us) dominates manager (30us) under the kernel span
        assert [step.span.span_id for step in path] == [1, 2, 4]
        assert path[0].share == pytest.approx(1.0)
        assert path[-1].share == pytest.approx(0.35)
        assert path[-1].label == "file_server/fetch_page"

    def test_renders_are_printable(self):
        tree = SpanTree(_tree())
        a = attribute(tree, [], tree.by_id[1])
        text = render_attribution(a)
        assert "disk" in text and "total" in text
        text = render_critical_path(critical_path(tree, tree.by_id[1]))
        assert "file_server/fetch_page" in text


@pytest.fixture
def traced_fault():
    """One default-manager fault on a cached file, traced."""
    tracer = Tracer()
    system = build_system(memory_mb=8, tracer=tracer)
    kernel = system.kernel
    file_seg = kernel.create_segment(
        0, name="cp-file", manager=system.default_manager, auto_grow=True
    )
    system.file_server.create_file(file_seg, data=b"crit" * 2048)
    space = kernel.create_segment(8, name="cp-space")
    space.bind(0, 2, file_seg, 0)
    tracer.reset()
    before = kernel.meter.total_us
    kernel.reference(space, 0, write=False)
    return tracer, kernel.meter.total_us - before


class TestFigure2Attribution:
    def test_buckets_sum_to_metered_fault_cost(self, traced_fault):
        tracer, metered = traced_fault
        tree = SpanTree(tracer.spans)
        (root,) = tree.roots()
        a = attribute(tree, tracer.events, root)
        assert a.total_us == pytest.approx(root.duration_us)
        assert a.total_us == pytest.approx(metered)

    def test_separate_process_manager_shows_ipc_cost(self, traced_fault):
        tracer, _ = traced_fault
        tree = SpanTree(tracer.spans)
        (root,) = tree.roots()
        a = attribute(tree, tracer.events, root)
        # the default manager runs as a separate process: the fault and
        # reply messages must surface as an ipc bucket
        assert a.buckets.get("ipc", 0.0) > 0.0
        # a cached-file fill is disk-dominated, the paper's observation
        assert a.share("disk") > 0.5

    def test_critical_path_reaches_the_page_fill(self, traced_fault):
        tracer, _ = traced_fault
        tree = SpanTree(tracer.spans)
        (root,) = tree.roots()
        labels = [s.label for s in critical_path(tree, root)]
        assert labels[0] == "application/page_fault"
        assert "file_server/fetch_page" in labels

    def test_analyze_covers_every_root(self, traced_fault):
        tracer, _ = traced_fault
        results = analyze(tracer.spans, tracer.events)
        assert len(results) == len(SpanTree(tracer.spans).roots())
        for a, path in results:
            assert a.total_us == pytest.approx(a.root.duration_us)
            assert path[0].span is a.root


class TestFailoverAttribution:
    def test_degraded_fault_still_conserves(self):
        from repro.chaos import ChaosPlan, Injector
        from repro.managers.default_manager import DefaultSegmentManager

        tracer = Tracer()
        system = build_system(memory_mb=8, tracer=tracer)
        kernel = system.kernel
        victim = DefaultSegmentManager(
            kernel,
            system.spcm,
            system.file_server,
            initial_frames=0,
            name="cp-victim",
        )
        injector = Injector(
            ChaosPlan(manager_hang_rate=1.0, target_managers=("cp-victim",)),
            tracer=tracer,
        )
        injector.install(system)
        file_seg = kernel.create_segment(
            0, name="cp-failover-file", manager=victim, auto_grow=True
        )
        system.file_server.create_file(file_seg, data=b"fail" * 2048)
        space = kernel.create_segment(8, name="cp-failover-space")
        space.bind(0, 2, file_seg, 0)
        tracer.reset()
        before = kernel.meter.total_us
        kernel.reference(space, 0, write=False)
        metered = kernel.meter.total_us - before

        tree = SpanTree(tracer.spans)
        (root,) = tree.roots()
        a = attribute(tree, tracer.events, root)
        assert a.total_us == pytest.approx(metered)
        # the failover path crosses kernel, manager, and disk at least
        for bucket in ("kernel", "manager", "disk"):
            assert a.buckets.get(bucket, 0.0) > 0.0


# ---------------------------------------------------------------------------
# property: conservation holds for arbitrary well-formed trees
# ---------------------------------------------------------------------------


@st.composite
def span_forests(draw):
    """A random single-root span tree with nested child intervals."""
    components = st.sampled_from(
        ["application", "kernel", "manager", "spcm", "file_server", "odd"]
    )
    n = draw(st.integers(min_value=1, max_value=12))
    spans = [
        SpanRecord(1, None, draw(components), "op", 0.0, 1000.0)
    ]
    for sid in range(2, n + 1):
        parent = spans[draw(st.integers(0, len(spans) - 1))]
        # children partition at most the parent's interval
        lo = draw(
            st.floats(
                parent.t_start_us,
                parent.t_end_us,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        hi = draw(
            st.floats(
                lo, parent.t_end_us, allow_nan=False, allow_infinity=False
            )
        )
        spans.append(
            SpanRecord(sid, parent.span_id, draw(components), "op", lo, hi)
        )
    events = [
        TraceStep(
            i,
            draw(st.sampled_from(["ipc", "zeroing", "kernel"])),
            "e",
            cost_us=draw(st.floats(0.0, 500.0, allow_nan=False)),
            span_id=draw(st.integers(1, len(spans))),
        )
        for i in range(draw(st.integers(0, 5)))
    ]
    return spans, events


class TestConservationProperty:
    @settings(max_examples=60, deadline=None)
    @given(span_forests())
    def test_attribution_is_conservative(self, forest):
        spans, events = forest
        tree = SpanTree(spans)
        roots = tree.roots()
        # only check trees whose children nest within their parents AND
        # whose siblings don't overlap (the tracer guarantees both);
        # rather than filter in the strategy, skip degenerate draws
        for root in roots:
            for span in tree.walk(root):
                if tree.self_us(span) < 0:
                    return
        for root in roots:
            a = attribute(tree, events, root)
            assert a.total_us == pytest.approx(root.duration_us, abs=1e-6)
            assert set(a.buckets) <= set(BUCKET_ORDER)
