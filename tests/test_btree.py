"""The B+-tree index."""

from __future__ import annotations

import random

import pytest

from repro.dbms.btree import BPlusTree
from repro.errors import DBMSError


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(1) is None
        assert 1 not in tree
        tree.check_invariants()

    def test_insert_search(self):
        tree = BPlusTree(order=4)
        for key in (5, 1, 9, 3):
            tree.insert(key, f"v{key}")
        assert tree.search(5) == "v5"
        assert tree.search(2) is None
        assert 9 in tree
        assert len(tree) == 4

    def test_overwrite_keeps_size(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert len(tree) == 1
        assert tree.search(1) == "b"

    def test_order_validation(self):
        with pytest.raises(DBMSError):
            BPlusTree(order=3)

    def test_splits_preserve_everything(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key * 2)
        tree.check_invariants()
        assert tree.height > 1
        for key in range(100):
            assert tree.search(key) == key * 2

    def test_random_insert_order(self):
        keys = list(range(500))
        random.Random(1).shuffle(keys)
        tree = BPlusTree(order=8)
        for key in keys:
            tree.insert(key, -key)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(500))


class TestRangeScan:
    def test_range_is_sorted_and_bounded(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 3):
            tree.insert(key, key)
        got = list(tree.range(10, 40))
        assert got == [(k, k) for k in range(12, 40, 3)]

    def test_empty_and_inverted_ranges(self):
        tree = BPlusTree()
        tree.insert(5, "x")
        assert list(tree.range(10, 20)) == []
        assert list(tree.range(20, 10)) == []

    def test_range_spans_leaves(self):
        tree = BPlusTree(order=4)
        for key in range(50):
            tree.insert(key, key)
        assert len(list(tree.range(0, 50))) == 50


class TestDelete:
    def test_delete_leaf_entries(self):
        tree = BPlusTree(order=4)
        for key in range(20):
            tree.insert(key, key)
        assert tree.delete(7)
        assert not tree.delete(7)
        assert tree.search(7) is None
        assert len(tree) == 19
        tree.check_invariants()

    def test_delete_everything(self):
        tree = BPlusTree(order=4)
        keys = list(range(200))
        random.Random(2).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        random.Random(3).shuffle(keys)
        for key in keys:
            assert tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0

    def test_delete_missing_from_empty(self):
        assert not BPlusTree().delete(4)

    def test_interleaved_insert_delete(self):
        tree = BPlusTree(order=6)
        model: dict[int, int] = {}
        rng = random.Random(4)
        for _ in range(2000):
            key = rng.randint(0, 200)
            if rng.random() < 0.6:
                tree.insert(key, key)
                model[key] = key
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        tree.check_invariants()
        assert dict(tree.items()) == model


class TestSizing:
    def test_bulk_load(self):
        tree = BPlusTree.bulk_load([(3, "c"), (1, "a"), (2, "b")], order=4)
        assert [k for k, _ in tree.items()] == [1, 2, 3]

    def test_estimated_pages_matches_the_papers_1mb_index(self):
        """~64K entries of 16 bytes on 4 KB pages = 256 pages = 1 MB."""
        tree = BPlusTree(order=128)
        for key in range(65536):
            tree.insert(key, key)
        assert tree.estimated_pages() == 256

    def test_node_count_grows(self):
        tree = BPlusTree(order=4)
        assert tree.node_count() == 1
        for key in range(50):
            tree.insert(key, key)
        assert tree.node_count() > 10
