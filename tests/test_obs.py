"""The observability layer: tracer, metrics, exporters, integration.

The integration tests pin the property the layer exists for: a traced
default-manager page fault yields exactly the Figure-2 span sequence,
and the per-span self-costs partition the kernel cost meter's total.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import build_system
from repro.core.faults import FaultTrace, TraceStep
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    SpanRecord,
    Tracer,
)
from repro.obs.export import (
    fault_breakdown,
    read_jsonl,
    render_breakdown,
    render_flame,
    to_jsonl,
    validate_record,
    write_jsonl,
)
from repro.obs.records import TraceStep as ObsTraceStep
from repro.obs.trace import get_global_tracer, set_global_tracer
from repro.sim.stats import Tally


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------


class TestNullTracer:
    def test_disabled_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        # the null span is a reusable singleton context manager
        s1 = NULL_TRACER.span("kernel", "x")
        s2 = NULL_TRACER.span("manager", "y", attr=1)
        assert s1 is s2
        with s1 as inner:
            inner.set_attr("k", "v")  # discarded, no error
        NULL_TRACER.event("kernel", "noop", 5.0)
        NULL_TRACER.reset()

    def test_global_tracer_default(self):
        assert get_global_tracer() is NULL_TRACER
        t = Tracer()
        set_global_tracer(t)
        try:
            assert get_global_tracer() is t
        finally:
            set_global_tracer(NULL_TRACER)


class TestSpans:
    def test_nesting_assigns_parents(self):
        t = Tracer()
        with t.span("application", "page_fault"):
            with t.span("kernel", "dispatch_fault"):
                with t.span("manager", "handle_fault"):
                    pass
            with t.span("kernel", "MigratePages"):
                pass
        a, b, c, d = t.spans
        assert a.parent_id is None
        assert b.parent_id == a.span_id
        assert c.parent_id == b.span_id
        assert d.parent_id == a.span_id  # sibling of dispatch_fault
        assert all(s.closed for s in t.spans)
        assert t.roots() == [a]
        assert t.children(a) == [b, d]
        assert [s.span_id for s, _ in t.walk(a)] == [1, 2, 3, 4]

    def test_clock_drives_durations_and_self_cost(self):
        now = [0.0]
        t = Tracer(clock=lambda: now[0])
        with t.span("application", "page_fault"):
            now[0] += 20.0
            with t.span("kernel", "dispatch_fault"):
                now[0] += 100.0
            now[0] += 7.0
        root, child = t.spans
        assert root.duration_us == 127.0
        assert child.duration_us == 100.0
        assert t.self_cost_us(root) == 27.0
        assert t.self_cost_us(child) == 100.0

    def test_events_attach_to_innermost_span(self):
        t = Tracer()
        t.event("application", "before any span")
        with t.span("kernel", "dispatch_fault") as span:
            t.event("kernel", "forward fault", 15.0)
        outside, inside = t.events
        assert outside.span_id is None
        assert inside.span_id == span.record.span_id
        assert inside.cost_us == 15.0
        assert t.events_in(t.spans[0]) == [inside]
        # step numbers count emission order
        assert [e.step for e in t.events] == [1, 2]

    def test_exception_closes_span_and_marks_error(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("manager", "handle_fault"):
                raise RuntimeError("boom")
        (span,) = t.spans
        assert span.closed
        assert span.attrs["error"] == "RuntimeError"
        assert t.current_span is None

    def test_out_of_order_exit_closes_inner_spans(self):
        t = Tracer()
        outer = t.span("kernel", "outer")
        t.span("manager", "inner-left-open")
        outer.__exit__(None, None, None)
        assert all(s.closed for s in t.spans)
        assert t.current_span is None

    def test_reset(self):
        t = Tracer()
        with t.span("kernel", "x"):
            t.event("kernel", "e")
        t.reset()
        assert t.spans == [] and t.events == []
        with t.span("kernel", "y"):
            pass
        assert t.spans[0].span_id == 1  # ids restart


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_semantics(self):
        c = Counter("faults")
        assert c.inc() == 1.0
        assert c.inc(4.0) == 5.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_semantics(self):
        g = Gauge("free_frames")
        g.set(128.0)
        assert g.add(-28.0) == 100.0
        assert g.value == 100.0

    def test_histogram_is_a_tally(self):
        h = Histogram("latency")
        assert isinstance(h, Tally)
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        assert h.percentile(50) == 2.0
        assert h.summary()["count"] == 4.0

    def test_registry_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("b") is r.gauge("b")
        assert r.histogram("c") is r.histogram("c")

    def test_registry_rejects_cross_kind_collisions(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ValueError):
            r.gauge("a")
        with pytest.raises(ValueError):
            r.histogram("a")
        r.bind("p", lambda: {})
        with pytest.raises(ValueError):
            r.bind("p", lambda: {})
        with pytest.raises(ValueError):
            r.counter("p")

    def test_bind_tally_adopts_existing_accumulator(self):
        r = MetricsRegistry()
        t = Tally("resp")
        t.record(10.0)
        r.bind_tally("response_s", t)
        snap = r.snapshot()
        assert snap["response_s"]["mean"] == 10.0

    def test_check_free_covers_every_kind_pair(self):
        # a histogram name blocks the other metric kinds...
        r = MetricsRegistry()
        r.histogram("h")
        with pytest.raises(ValueError):
            r.counter("h")
        with pytest.raises(ValueError):
            r.gauge("h")
        # ...but get-or-create of the same kind stays legal
        assert r.histogram("h") is r.histogram("h")
        r.gauge("g")
        with pytest.raises(ValueError):
            r.histogram("g")
        # a bound provider prefix blocks every kind, including adoption
        r.bind("prov", lambda: {})
        with pytest.raises(ValueError):
            r.gauge("prov")
        with pytest.raises(ValueError):
            r.histogram("prov")
        with pytest.raises(ValueError):
            r.bind_tally("prov", Tally("t"))

    def test_bind_tally_of_already_bound_name_rejected(self):
        r = MetricsRegistry()
        r.bind_tally("resp", Tally("resp"))
        with pytest.raises(ValueError):
            r.bind_tally("resp", Tally("other"))
        # and a name held by another kind is just as taken
        r.counter("c")
        with pytest.raises(ValueError):
            r.bind_tally("c", Tally("c"))

    def test_snapshot_flattens_providers(self):
        r = MetricsRegistry()
        r.counter("faults").inc(3.0)
        r.gauge("frames").set(7.0)
        r.bind("disk", lambda: {"reads": 2.0, "writes": 1.0})
        snap = r.snapshot()
        assert snap["faults"] == 3.0
        assert snap["frames"] == 7.0
        assert snap["disk.reads"] == 2.0
        assert snap["disk.writes"] == 1.0


class TestTallySummary:
    def test_summary_keys_and_values(self):
        t = Tally("x")
        for v in range(1, 101):
            t.record(float(v))
        s = t.summary()
        assert s["count"] == 100.0
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["p50"] == 50.0 and s["p90"] == 90.0 and s["p99"] == 99.0

    def test_percentile_zero_is_minimum(self):
        t = Tally("x")
        for v in (5.0, 1.0, 9.0):
            t.record(v)
        assert t.percentile(0) == 1.0
        assert t.percentile(100) == 9.0

    def test_nearest_rank_clamps_tiny_samples_to_minimum(self):
        t = Tally("x")
        t.record(10.0)
        t.record(20.0)
        # any 0 < p <= 50 lands on rank 1 with two observations
        assert t.percentile(25) == 10.0
        assert t.percentile(50) == 10.0
        assert t.percentile(51) == 20.0

    def test_empty_summary(self):
        assert Tally("x").summary()["count"] == 0.0


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


def _sample_tracer() -> Tracer:
    now = [0.0]
    t = Tracer(clock=lambda: now[0])
    with t.span("application", "page_fault", vpn=3):
        now[0] += 20.0
        t.event("application", "trap", 20.0)
        with t.span("kernel", "dispatch_fault", kind="MISSING_PAGE"):
            now[0] += 87.0
    return t


class TestJsonl:
    def test_round_trip(self, tmp_path):
        t = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(t, path)
        spans, events = read_jsonl(str(path))
        assert spans == t.spans
        assert events == t.events

    def test_round_trip_from_stream(self):
        t = _sample_tracer()
        spans, events = read_jsonl(io.StringIO(to_jsonl(t)))
        assert spans == t.spans and events == t.events

    def test_every_line_validates(self):
        for line in to_jsonl(_sample_tracer()).splitlines():
            validate_record(json.loads(line))

    def test_validate_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown record type"):
            validate_record({"type": "metric"})

    def test_validate_rejects_missing_required(self):
        with pytest.raises(ValueError, match="missing field"):
            validate_record({"type": "event", "actor": "kernel"})

    def test_validate_rejects_unknown_fields(self):
        record = _sample_tracer().spans[0].to_dict()
        record["color"] = "red"
        with pytest.raises(ValueError, match="unknown fields"):
            validate_record(record)

    def test_validate_rejects_wrong_field_type(self):
        record = _sample_tracer().spans[0].to_dict()
        record["span_id"] = "one"
        with pytest.raises(ValueError, match="span_id"):
            validate_record(record)

    def test_read_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "metric"}\n')
        with pytest.raises(ValueError, match="line 1"):
            read_jsonl(str(path))


class TestRenders:
    def test_flame_shows_tree_costs_and_events(self):
        t = _sample_tracer()
        text = render_flame(t)
        assert "application/page_fault  total=107.0us  self=20.0us" in text
        assert "  kernel/dispatch_fault  total=87.0us" in text
        assert "* [application] trap  (20 us)" in text

    def test_breakdown_partitions_total(self):
        t = _sample_tracer()
        phases = fault_breakdown(t)
        assert phases["application/page_fault"]["self_us"] == 20.0
        assert phases["kernel/dispatch_fault"]["self_us"] == 87.0
        assert sum(b["self_us"] for b in phases.values()) == 107.0
        text = render_breakdown(t)
        assert "total" in text and "107.0" in text


# ---------------------------------------------------------------------------
# shared record type (FaultTrace <-> tracer)
# ---------------------------------------------------------------------------


class TestSharedRecords:
    def test_faults_reexports_obs_tracestep(self):
        assert TraceStep is ObsTraceStep

    def test_fault_trace_from_events_renumbers(self):
        t = Tracer()
        with t.span("kernel", "dispatch_fault"):
            t.event("kernel", "forward", 15.0)
            t.event("manager", "resume", 20.0)
        trace = FaultTrace.from_events(t.events)
        assert [s.step for s in trace.steps] == [1, 2]
        assert trace.total_cost_us == 35.0
        assert trace.steps[0].actor == "kernel"


# ---------------------------------------------------------------------------
# integration: the Figure-2 fault under the tracer
# ---------------------------------------------------------------------------

#: The Figure-2 steps as span (component, operation) pairs, in DFS order.
FIGURE2_SPANS = [
    ("application", "page_fault"),
    ("kernel", "dispatch_fault"),
    ("manager", "handle_fault"),
    ("manager", "fill_page"),
    ("file_server", "fetch_page"),
    ("kernel", "MigratePages"),
]


@pytest.fixture
def traced_fault():
    """One default-manager fault on a cached file, traced."""
    tracer = Tracer()
    system = build_system(memory_mb=8, tracer=tracer)
    kernel = system.kernel
    file_seg = kernel.create_segment(
        0, name="fig2-file", manager=system.default_manager, auto_grow=True
    )
    system.file_server.create_file(file_seg, data=b"fig2" * 2048)
    space = kernel.create_segment(8, name="fig2-space")
    space.bind(0, 2, file_seg, 0)
    tracer.reset()  # drop boot-time spans
    before = kernel.meter.total_us
    kernel.reference(space, 0, write=False)
    return tracer, kernel.meter.total_us - before


class TestFigure2Integration:
    def test_exact_span_sequence(self, traced_fault):
        tracer, _ = traced_fault
        (root,) = tracer.roots()
        got = [(s.component, s.operation) for s, _ in tracer.walk(root)]
        assert got == FIGURE2_SPANS

    def test_self_costs_partition_meter_total(self, traced_fault):
        tracer, metered = traced_fault
        (root,) = tracer.roots()
        spans = [s for s, _ in tracer.walk(root)]
        assert root.duration_us == pytest.approx(metered)
        assert sum(tracer.self_cost_us(s) for s in spans) == pytest.approx(
            metered
        )
        # the paper's observation: the page fill dominates
        fetch = next(s for s in spans if s.operation == "fetch_page")
        assert fetch.duration_us > 0.9 * metered

    def test_span_attrs_identify_the_fault(self, traced_fault):
        tracer, _ = traced_fault
        (root,) = tracer.roots()
        assert root.attrs == {
            "space": "fig2-space",
            "vpn": 0,
            "write": False,
        }
        dispatch = tracer.children(root)[0]
        assert dispatch.attrs["kind"] == "MISSING_PAGE"
        assert dispatch.attrs["manager"] == "default-manager"

    def test_fault_trace_rebuilds_from_tracer_events(self, traced_fault):
        tracer, _ = traced_fault
        trace = FaultTrace.from_events(tracer.events)
        actors = [s.actor for s in trace.steps]
        # the tracer sees one layer deeper than Figure 2: the TLB miss
        # that raised the fault comes first
        assert actors[0] == "tlb"
        assert actors[1] == "application"
        assert "file server" in actors
        assert actors[-1] == "manager"
        assert actors.index("application") < actors.index("file server")

    def test_disabled_tracer_records_nothing(self):
        system = build_system(memory_mb=8)  # NULL_TRACER by default
        assert system.tracer is NULL_TRACER
        seg = system.kernel.create_segment(
            8, name="quiet", manager=system.default_manager
        )
        system.kernel.reference(seg, 0, write=True)
        # the metered cost is still the paper's default-manager fault
        assert system.meter.total_us > 0


class TestSystemMetrics:
    def test_snapshot_covers_every_layer(self):
        system = build_system(memory_mb=8)
        seg = system.kernel.create_segment(
            8, name="m", manager=system.default_manager
        )
        system.kernel.reference(seg, 0, write=True)
        snap = system.metrics_snapshot()
        assert snap["kernel.faults"] == 1.0
        assert snap["kernel.migrate_calls"] >= 1.0
        assert snap["kernel.cost_us.trap"] > 0
        assert "tlb.misses" in snap
        assert "disk.reads" in snap
        assert "spcm.granted_frames" in snap
        assert snap["default_manager.faults_handled"] == 1.0

    def test_snapshot_deterministic_across_identical_runs(self):
        def run() -> dict:
            system = build_system(memory_mb=8)
            seg = system.kernel.create_segment(
                8, name="m", manager=system.default_manager
            )
            for page in range(4):
                system.kernel.reference(
                    seg, page * seg.page_size, write=(page % 2 == 0)
                )
            return system.metrics_snapshot()

        first, second = run(), run()
        assert first == second
        # key order is part of the export contract (byte-stable dumps)
        assert list(first) == list(second)


# ---------------------------------------------------------------------------
# integration: manager failover under injection (golden degradation trace)
# ---------------------------------------------------------------------------

#: The degradation path as span (component, operation) pairs, in DFS order:
#: the victim manager times out, the kernel fails its segments over to the
#: default manager (SPCM seizing the victim's frame stock on the way), and
#: the re-dispatched fault resolves via the ordinary Figure-2 tail.
FAILOVER_SPANS = [
    ("application", "page_fault"),
    ("kernel", "dispatch_fault"),
    ("kernel", "manager_failover"),
    ("spcm", "seize_frames"),
    ("kernel", "dispatch_fault"),
    ("manager", "handle_fault"),
    ("manager", "fill_page"),
    ("file_server", "fetch_page"),
    ("kernel", "MigratePages"),
]


@pytest.fixture
def traced_failover():
    """One fault whose manager hangs exactly once, traced end to end."""
    from repro.chaos import ChaosPlan, Injector
    from repro.managers.default_manager import DefaultSegmentManager

    tracer = Tracer()
    system = build_system(memory_mb=8, tracer=tracer)
    kernel = system.kernel
    victim = DefaultSegmentManager(
        kernel,
        system.spcm,
        system.file_server,
        initial_frames=0,
        name="victim-ucds",
    )
    file_seg = kernel.create_segment(
        0, name="fo-file", manager=victim, auto_grow=True
    )
    system.file_server.create_file(file_seg, data=b"fig2" * 2048)
    space = kernel.create_segment(8, name="fo-space")
    space.bind(0, 2, file_seg, 0)
    injector = Injector(
        ChaosPlan(
            seed=0,
            manager_hang_rate=1.0,
            max_injections=1,
            target_managers=("victim-ucds",),
        ),
        tracer=tracer,
    )
    injector.install(system)
    tracer.reset()  # drop boot/setup spans
    kernel.reference(space, 0, write=False)
    return tracer, kernel


class TestFailoverGoldenTrace:
    def test_exact_span_sequence(self, traced_failover):
        tracer, _ = traced_failover
        (root,) = tracer.roots()
        got = [(s.component, s.operation) for s, _ in tracer.walk(root)]
        assert got == FAILOVER_SPANS

    def test_failover_span_names_the_handoff(self, traced_failover):
        tracer, _ = traced_failover
        (root,) = tracer.roots()
        spans = [s for s, _ in tracer.walk(root)]
        failover = next(s for s in spans if s.operation == "manager_failover")
        assert failover.attrs["failed"] == "victim-ucds"
        assert failover.attrs["to"] == "default-manager"
        assert failover.attrs["reason"] == "timed out"
        # the re-dispatch resolves via the fallback manager
        redispatch = [s for s in spans if s.operation == "dispatch_fault"][1]
        assert redispatch.attrs["manager"] == "default-manager"

    def test_degradation_counters(self, traced_failover):
        _, kernel = traced_failover
        stats = kernel.stats.as_dict()
        assert stats["manager_timeouts"] == 1.0
        assert stats["manager_failovers"] == 1.0
        assert stats["fallback_resolutions"] == 1.0
        assert stats["manager_calls.victim-ucds"] == 1.0
        assert stats["manager_calls.default-manager"] == 1.0
