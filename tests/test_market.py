"""The dram memory market (S2.4)."""

from __future__ import annotations

import pytest

from repro.errors import InsufficientFundsError
from repro.spcm.market import DramAccount, MarketConfig, MemoryMarket
from repro.spcm.policy import (
    AllocationDecision,
    MarketPolicy,
    ReservePolicy,
)


def market(**kwargs) -> MemoryMarket:
    return MemoryMarket(MarketConfig(**kwargs))


class TestCharging:
    def test_holding_charge_is_m_d_t(self):
        """A process holding M megabytes for T seconds at rate D is
        charged M*D*T drams."""
        m = market(
            price_per_mb_second=2.0,
            income_per_second=0.0,
            savings_tax_rate=0.0,
            free_when_uncontended=False,
        )
        acct = m.open_account("p")
        acct.balance = 100.0
        m.set_holding("p", 5.0)
        m.advance(3.0)
        assert acct.balance == 100.0 - 5.0 * 2.0 * 3.0
        assert acct.total_memory_charges == 30.0

    def test_income_accrues(self):
        m = market(income_per_second=4.0, savings_tax_rate=0.0)
        acct = m.open_account("p")
        m.advance(2.5)
        assert acct.balance == 10.0
        assert acct.total_income == 10.0

    def test_free_when_uncontended(self):
        """'The SPCM can allow a process to continue to use memory at no
        charge when there are no outstanding memory requests.'"""
        m = market(income_per_second=0.0, savings_tax_rate=0.0)
        acct = m.open_account("p")
        m.set_holding("p", 10.0)
        m.advance(5.0)
        assert acct.total_memory_charges == 0.0
        m.demand_outstanding = True
        m.advance(10.0)
        assert acct.total_memory_charges == 50.0

    def test_savings_tax_only_above_threshold(self):
        m = market(
            income_per_second=0.0,
            savings_tax_rate=0.1,
            savings_tax_threshold=50.0,
        )
        rich = m.open_account("rich")
        poor = m.open_account("poor")
        rich.balance = 150.0
        poor.balance = 40.0
        m.advance(1.0)
        assert rich.balance == 150.0 - 10.0  # 10% of the 100 above threshold
        assert poor.balance == 40.0

    def test_io_charge(self):
        """The I/O charge that stops scan programs dodging the memory
        price."""
        m = market(io_charge_per_mb=0.5)
        acct = m.open_account("scanner")
        acct.balance = 10.0
        charged = m.charge_io("scanner", 8.0)
        assert charged == 4.0
        assert acct.balance == 6.0
        with pytest.raises(ValueError):
            m.charge_io("scanner", -1.0)

    def test_clock_monotonic(self):
        m = market()
        m.advance(5.0)
        with pytest.raises(ValueError):
            m.advance(4.0)

    def test_duplicate_account_rejected(self):
        m = market()
        m.open_account("p")
        with pytest.raises(ValueError):
            m.open_account("p")


class TestConservation:
    def test_drams_conserved_across_all_flows(self):
        """Invariant 6: balances plus the system sink always sum to zero."""
        m = market(free_when_uncontended=False, savings_tax_threshold=10.0)
        m.open_account("a", income_per_second=10.0)
        m.open_account("b", income_per_second=20.0)  # accrues taxable savings
        m.set_holding("a", 4.0)
        for t in (1.0, 2.5, 7.0, 20.0):
            m.advance(t)
            m.charge_io("a", 1.0)
            assert abs(m.total_drams()) < 1e-9


class TestPlanningQueries:
    def test_affordable_seconds(self):
        m = market(price_per_mb_second=1.0, income_per_second=2.0)
        acct = m.open_account("p")
        acct.balance = 100.0
        # net drain at 12 MB = 12 - 2 = 10/s -> 10 seconds
        assert m.affordable_seconds("p", 12.0) == pytest.approx(10.0)
        # sustainable holdings run forever
        assert m.affordable_seconds("p", 1.0) == float("inf")

    def test_seconds_until_affordable_save_then_run(self):
        """The batch pattern: save drams, then run with full memory."""
        m = market(price_per_mb_second=1.0, income_per_second=5.0)
        acct = m.open_account("batch")
        acct.balance = 0.0
        # needs 100 MB for 10 s = 1000 drams at 5/s income -> 200 s saving
        assert m.seconds_until_affordable("batch", 100.0, 10.0) == 200.0
        acct.balance = 1000.0
        assert m.seconds_until_affordable("batch", 100.0, 10.0) == 0.0

    def test_is_broke_and_require_funds(self):
        m = market()
        acct = m.open_account("p")
        acct.balance = -1.0
        assert m.is_broke("p")
        with pytest.raises(InsufficientFundsError):
            m.require_funds("p", 5.0)

    def test_equal_income_yields_equal_long_run_share(self):
        """'If each user account receives equal income, its programs also
        receive an equal share of the machine over time.'"""
        m = market(price_per_mb_second=1.0, income_per_second=10.0,
                   free_when_uncontended=False, savings_tax_rate=0.0)
        m.open_account("a")
        m.open_account("b")
        # both sustainably hold income/price = 10 MB; simulate that
        m.set_holding("a", 10.0)
        m.set_holding("b", 10.0)
        m.advance(100.0)
        a, b = m.account("a"), m.account("b")
        assert a.holding_mb_seconds == b.holding_mb_seconds
        assert abs(a.balance - b.balance) < 1e-9


class TestIOChargeIntegration:
    def test_scan_manager_pays_for_its_io(self, memory):
        """The S2.4 rule wired end to end: a manager's backing-store
        traffic drains its dram account."""
        from repro.core.kernel import Kernel
        from repro.core.uio import UIO, FileServer
        from repro.hw.costs import DECSTATION_5000_200
        from repro.hw.disk import Disk
        from repro.managers.default_manager import DefaultSegmentManager
        from repro.spcm.spcm import SystemPageCacheManager

        kernel = Kernel(memory)
        mkt = market(io_charge_per_mb=2.0)
        spcm = SystemPageCacheManager(kernel, market=mkt)
        disk = Disk(DECSTATION_5000_200)
        server = FileServer(kernel, disk)
        manager = DefaultSegmentManager(kernel, spcm, server, initial_frames=64)
        mkt.account(manager.account).balance = 100.0
        uio = UIO(kernel, server)
        seg = kernel.create_segment(
            0, name="scanfile", manager=manager, auto_grow=True
        )
        server.create_file(seg, data=b"s" * (16 * 4096))
        uio.read(seg, 0, 16 * 4096)  # 16 page-ins = 64 KB
        account = mkt.account(manager.account)
        expected = 16 * 4096 / (1024 * 1024) * 2.0
        assert account.total_io_charges == pytest.approx(expected)

    def test_no_market_means_no_charge(self, system):
        # the default system has no market: charge_io is a no-op
        assert system.default_manager.charge_io(4096) == 0.0


class TestPolicies:
    def test_reserve_policy(self):
        policy = ReservePolicy(reserve_frames=10)
        verdict = policy.decide("p", 100, 50, 4096)
        assert verdict.decision is AllocationDecision.GRANT
        assert verdict.n_frames == 40
        verdict = policy.decide("p", 5, 10, 4096)
        assert verdict.decision is AllocationDecision.DEFER

    def test_reserve_policy_validation(self):
        with pytest.raises(ValueError):
            ReservePolicy(reserve_frames=-1)

    def test_market_policy_grants_sustainable_amounts(self):
        m = market(price_per_mb_second=1.0, income_per_second=4.0)
        acct = m.open_account("p")
        acct.balance = 100.0
        policy = MarketPolicy(m, min_hold_seconds=10.0)
        # 4 MB = 1024 frames is sustainable (income covers it)
        verdict = policy.decide("p", 1024, 100000, 4096)
        assert verdict.decision is AllocationDecision.GRANT
        assert verdict.n_frames == 1024

    def test_market_policy_halves_unaffordable_requests(self):
        m = market(price_per_mb_second=1.0, income_per_second=0.0)
        acct = m.open_account("p")
        acct.balance = 50.0
        policy = MarketPolicy(m, min_hold_seconds=10.0)
        # can afford ~5 MB for 10 s; asks for 100 MB (25600 frames)
        verdict = policy.decide("p", 25600, 100000, 4096)
        assert verdict.decision is AllocationDecision.GRANT
        assert verdict.n_frames * 4096 / (1024 * 1024) <= 5.0

    def test_market_policy_refuses_broke_accounts(self):
        m = market()
        acct = m.open_account("p")
        acct.balance = -5.0
        policy = MarketPolicy(m)
        assert (
            policy.decide("p", 1, 100, 4096).decision
            is AllocationDecision.REFUSE
        )

    def test_market_policy_refuses_unknown_accounts(self):
        policy = MarketPolicy(market())
        assert (
            policy.decide("ghost", 1, 100, 4096).decision
            is AllocationDecision.REFUSE
        )

    def test_market_policy_defers_when_pool_empty(self):
        m = market()
        m.open_account("p")
        policy = MarketPolicy(m, reserve_frames=4)
        assert (
            policy.decide("p", 1, 4, 4096).decision
            is AllocationDecision.DEFER
        )
