"""The UIO block interface and the file server."""

from __future__ import annotations

import pytest

from repro import build_system
from repro.core.uio import pages_for_bytes
from repro.errors import UIOError


@pytest.fixture
def world(system):
    kernel = system.kernel
    seg = kernel.create_segment(
        0, name="f", manager=system.default_manager, auto_grow=True
    )
    return system, seg


class TestPagesForBytes:
    def test_rounding(self):
        assert pages_for_bytes(0, 4096) == 0
        assert pages_for_bytes(1, 4096) == 1
        assert pages_for_bytes(4096, 4096) == 1
        assert pages_for_bytes(4097, 4096) == 2


class TestFileServer:
    def test_create_and_fetch_roundtrip(self, world):
        system, seg = world
        data = bytes(range(256)) * 32  # 8 KB
        system.file_server.create_file(seg, data=data)
        page0 = system.file_server.fetch_page(seg, 0)
        page1 = system.file_server.fetch_page(seg, 1)
        assert page0 + page1 == data

    def test_fetch_past_eof_is_zero(self, world):
        system, seg = world
        system.file_server.create_file(seg, data=b"x" * 100)
        assert system.file_server.fetch_page(seg, 5) == bytes(4096)

    def test_double_registration_rejected(self, world):
        system, seg = world
        system.file_server.create_file(seg)
        with pytest.raises(UIOError):
            system.file_server.create_file(seg)

    def test_non_file_rejected(self, world):
        system, _ = world
        other = system.kernel.create_segment(2)
        with pytest.raises(UIOError):
            system.file_server.file_for(other)
        assert not system.file_server.is_file(other)

    def test_store_page_extends_size(self, world):
        system, seg = world
        file = system.file_server.create_file(seg, data=b"x" * 4096)
        system.file_server.store_page(seg, 3, b"y" * 4096)
        assert file.size_bytes == 4 * 4096
        assert system.file_server.fetch_page(seg, 3) == b"y" * 4096

    def test_store_requires_full_page(self, world):
        system, seg = world
        system.file_server.create_file(seg)
        with pytest.raises(UIOError):
            system.file_server.store_page(seg, 0, b"short")

    def test_fetch_charges_device_time(self, world):
        system, seg = world
        system.file_server.create_file(seg, data=b"x" * 4096)
        before = system.kernel.meter.by_category.get("file_server", 0.0)
        system.file_server.fetch_page(seg, 0)
        assert system.kernel.meter.by_category["file_server"] > before


class TestUIORead:
    def test_read_faults_in_uncached_pages(self, world):
        system, seg = world
        data = b"abcd" * 2048  # 8 KB
        system.file_server.create_file(seg, data=data)
        assert seg.resident_pages == 0
        got = system.uio.read(seg, 0, len(data))
        assert got == data
        assert seg.resident_pages == 2

    def test_read_clamps_at_eof(self, world):
        system, seg = world
        system.file_server.create_file(seg, data=b"hello")
        assert system.uio.read(seg, 0, 100) == b"hello"
        assert system.uio.read(seg, 3, 100) == b"lo"
        assert system.uio.read(seg, 5, 10) == b""

    def test_cached_4kb_read_costs_222us(self, world):
        system, seg = world
        system.file_server.create_file(seg, data=b"x" * 4096)
        system.uio.read(seg, 0, 4096)  # warm
        snap = system.kernel.meter.snapshot()
        system.uio.read(seg, 0, 4096)
        assert sum(system.kernel.meter.delta_since(snap).values()) == 222.0

    def test_unaligned_read_spans_pages(self, world):
        system, seg = world
        data = bytes(range(256)) * 64  # 16 KB
        system.file_server.create_file(seg, data=data)
        got = system.uio.read(seg, 4000, 1000)
        assert got == data[4000:5000]

    def test_negative_range_rejected(self, world):
        system, seg = world
        system.file_server.create_file(seg)
        with pytest.raises(UIOError):
            system.uio.read(seg, -1, 10)
        with pytest.raises(UIOError):
            system.uio.read(seg, 0, -10)


class TestUIOWrite:
    def test_write_then_read_roundtrip(self, world):
        system, seg = world
        system.file_server.create_file(seg)
        payload = b"The quick brown fox" * 300  # ~5.7 KB
        system.uio.write(seg, 0, payload)
        assert system.uio.read(seg, 0, len(payload)) == payload

    def test_cached_4kb_write_costs_203us(self, world):
        system, seg = world
        system.file_server.create_file(seg, data=b"x" * 4096)
        system.uio.read(seg, 0, 4096)  # warm
        snap = system.kernel.meter.snapshot()
        system.uio.write(seg, 0, b"y" * 4096)
        assert sum(system.kernel.meter.delta_since(snap).values()) == 203.0

    def test_append_grows_file_and_segment(self, world):
        system, seg = world
        file = system.file_server.create_file(seg)
        system.uio.write(seg, 0, b"a" * 4096)
        system.uio.write(seg, 4096, b"b" * 4096)
        assert file.size_bytes == 8192
        assert seg.n_pages >= 2

    def test_append_uses_16kb_units(self, world):
        """The default manager allocates appends in 16 KB units (S3.2)."""
        system, seg = world
        system.file_server.create_file(seg)
        calls_before = system.default_manager.append_allocations
        for off in range(0, 16 * 4096, 4096):
            system.uio.write(seg, off, b"z" * 4096)
        # 16 pages appended in 4 allocations of 4 pages
        assert system.default_manager.append_allocations - calls_before == 4

    def test_write_marks_dirty(self, world):
        system, seg = world
        system.file_server.create_file(seg)
        system.uio.write(seg, 0, b"dirty")
        from repro.core.flags import PageFlags

        assert PageFlags.DIRTY & PageFlags(seg.pages[0].flags)

    def test_overwrite_of_uncached_page_fetches_it_first(self, world):
        system, seg = world
        data = b"12345678" * 512  # one page
        system.file_server.create_file(seg, data=data)
        system.uio.write(seg, 100, b"XX")
        expected = data[:100] + b"XX" + data[102:]
        assert system.uio.read(seg, 0, 4096) == expected

    def test_empty_write_is_noop(self, world):
        system, seg = world
        file = system.file_server.create_file(seg)
        assert system.uio.write(seg, 0, b"") == 0
        assert file.size_bytes == 0

    def test_negative_offset_rejected(self, world):
        system, seg = world
        system.file_server.create_file(seg)
        with pytest.raises(UIOError):
            system.uio.write(seg, -5, b"x")
