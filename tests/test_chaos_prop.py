"""Property tests: any valid plan, any seed --- the system survives.

Hypothesis generates fault schedules across the plan's whole parameter
space and asserts the chaos contract: a seeded schedule either completes
or stops with a *typed* :class:`~repro.errors.ReproError` (never a bare
exception, never a lost frame), the invariant checker never fires (it
would propagate as :class:`InvariantViolationError` and fail the test),
and the whole thing is bit-for-bit deterministic in ``(plan, seed)``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosPlan, Injector
from repro.chaos.harness import VICTIM_MANAGER, run_schedule
from repro.errors import ReproError, TransientDiskError

pytestmark = pytest.mark.chaos

# rates capped at 0.3 so the shared-draw sums stay within [0, 1]
_rate = st.floats(min_value=0.0, max_value=0.3)

plans = st.builds(
    ChaosPlan,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    disk_error_rate=_rate,
    disk_slow_rate=_rate,
    disk_error_burst=st.integers(min_value=1, max_value=3),
    disk_slow_factor=st.floats(min_value=1.0, max_value=16.0),
    frame_ecc_rate=st.floats(min_value=0.0, max_value=0.1),
    manager_crash_rate=_rate,
    manager_hang_rate=_rate,
    manager_byzantine_rate=_rate,
    manager_alloc_crash_rate=_rate,
    ipc_drop_rate=_rate,
    ipc_duplicate_rate=_rate,
    target_managers=st.just((VICTIM_MANAGER,)),
    max_injections=st.one_of(
        st.none(), st.integers(min_value=0, max_value=20)
    ),
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=plans, seed=st.integers(min_value=0, max_value=2**16))
def test_any_plan_completes_or_fails_typed(plan, seed):
    """The chaos contract over the Figure-2 workload: completion or a
    typed ReproError, with every invariant sweep clean (a violation
    would raise InvariantViolationError out of run_schedule)."""
    try:
        result = run_schedule("figure2-crash", seed, plan=plan)
    except ReproError as exc:  # pragma: no cover - contract breach
        pytest.fail(f"harness let a ReproError escape: {exc!r}")
    assert result.completed or result.error_type is not None
    if not result.completed:
        assert result.error  # the typed error carries a message
    assert result.checks_run >= 1
    assert result.n_injected == sum(result.injected.values())


@settings(max_examples=10, deadline=None)
@given(plan=plans, seed=st.integers(min_value=0, max_value=2**16))
def test_schedules_are_deterministic_in_plan_and_seed(plan, seed):
    a = run_schedule("figure2-crash", seed, plan=plan)
    b = run_schedule("figure2-crash", seed, plan=plan)
    assert a.completed == b.completed
    assert a.error_type == b.error_type
    assert a.injected == b.injected
    assert a.kernel_stats == b.kernel_stats
    assert a.references == b.references


def _drive(injector: Injector, n: int = 64) -> list:
    out = []
    for i in range(n):
        try:
            out.append(("disk", injector.disk_io("read", i)))
        except TransientDiskError:
            out.append(("disk", "error"))
        out.append(("ecc", injector.frame_ecc(i)))
        out.append(("mgr", injector.manager_invocation(VICTIM_MANAGER)))
        out.append(("ipc", injector.ipc_delivery(VICTIM_MANAGER)))
    return out


@settings(max_examples=50, deadline=None)
@given(plan=plans)
def test_injector_schedule_is_reproducible(plan):
    a, b = Injector(plan), Injector(plan)
    assert _drive(a) == _drive(b)
    assert a.injected == b.injected


@settings(max_examples=50, deadline=None)
@given(plan=plans)
def test_injected_events_are_sequenced_and_budgeted(plan):
    injector = Injector(plan)
    _drive(injector)
    seqs = [fault.seq for fault in injector.injected]
    assert seqs == list(range(1, len(seqs) + 1))
    assert sum(injector.counts().values()) == len(seqs)
    if plan.max_injections is not None:
        # an in-flight disk-error burst may run past the budget
        assert len(seqs) <= plan.max_injections + plan.disk_error_burst - 1
