"""SLO watchdogs: latency/failover objectives, drift sweeps, chaos wiring."""

from __future__ import annotations

import pytest

from repro import build_system
from repro.chaos.harness import run_schedule
from repro.obs.slo import Alert, SLOPolicy, SLOWatchdog
from repro.spcm.market import MemoryMarket


def _fault_workload(system, n_pages=8):
    kernel = system.kernel
    seg = kernel.create_segment(
        n_pages, name="slo-anon", manager=system.default_manager
    )
    for page in range(n_pages):
        kernel.reference(seg, page * seg.page_size, write=True)
    return seg


class TestLatencyObjective:
    def test_tight_p99_policy_fires_once(self):
        system = build_system(memory_mb=8)
        policy = SLOPolicy(fault_p99_us=1.0, min_fault_samples=2)
        watchdog = SLOWatchdog(system, policy).install()
        _fault_workload(system)
        alerts = [a for a in watchdog.alerts if a.name == "fault_p99_latency"]
        # edge-triggered: the violation persists for every later fault,
        # but only the crossing fires
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.severity == "warning"
        assert alert.value > alert.threshold
        assert watchdog.fault_latency.count == 8

    def test_generous_policy_stays_quiet(self):
        system = build_system(memory_mb=8)
        watchdog = SLOWatchdog(system).install()  # default policy
        _fault_workload(system)
        watchdog.check()
        assert watchdog.alerts == []

    def test_min_samples_gate_defers_judgement(self):
        system = build_system(memory_mb=8)
        policy = SLOPolicy(fault_p99_us=1.0, min_fault_samples=100)
        watchdog = SLOWatchdog(system, policy).install()
        _fault_workload(system)  # only 8 faults: never judged
        assert watchdog.alerts == []


class TestFailoverObjective:
    def test_hang_failover_breaches_tight_budget(self):
        from repro.chaos import ChaosPlan, Injector
        from repro.managers.default_manager import DefaultSegmentManager

        system = build_system(memory_mb=8)
        policy = SLOPolicy(failover_us=1_000.0, min_fault_samples=10_000)
        watchdog = SLOWatchdog(system, policy).install()
        victim = DefaultSegmentManager(
            system.kernel,
            system.spcm,
            system.file_server,
            initial_frames=0,
            name="slo-victim",
        )
        injector = Injector(
            ChaosPlan(manager_hang_rate=1.0, target_managers=("slo-victim",))
        )
        injector.install(system)
        seg = system.kernel.create_segment(4, name="slo-hang", manager=victim)
        system.kernel.reference(seg, 0, write=True)
        alerts = [a for a in watchdog.alerts if a.name == "failover_time"]
        assert len(alerts) == 1
        # the failover charges at least the 5ms manager timeout
        assert alerts[0].value >= 5_000.0


class TestDriftObjectives:
    def test_clean_system_sweeps_quiet(self):
        system = build_system(memory_mb=8)
        watchdog = SLOWatchdog(system).install()
        _fault_workload(system)
        assert watchdog.check() == []
        assert watchdog.checks_run == 1

    def test_vanished_frame_fires_critical(self):
        system = build_system(memory_mb=8)
        watchdog = SLOWatchdog(system).install()
        # steal a frame outright: census now counts one fewer than the
        # in-service total
        boot = next(iter(system.kernel.boot_segments.values()))
        page = next(iter(boot.pages))
        boot.pages.pop(page)
        fired = watchdog.check()
        names = [a.name for a in fired]
        assert "frame_conservation" in names
        alert = next(a for a in fired if a.name == "frame_conservation")
        assert alert.severity == "critical"
        # edge-trigger: a second sweep of the same excursion stays quiet
        assert watchdog.check() == []

    def test_market_imbalance_fires_critical(self):
        system = build_system(memory_mb=8)
        market = MemoryMarket()
        market.open_account("a")
        system.spcm.markets.append(market)
        watchdog = SLOWatchdog(system).install()
        assert watchdog.check() == []  # balanced: nothing fires
        # conjure drams from nowhere (no sink debit, no transfer)
        market.accounts["a"].balance += 5.0
        fired = watchdog.check()
        assert [a.name for a in fired] == ["market_balance"]
        assert fired[0].severity == "critical"
        # recovery re-arms the objective...
        market.accounts["a"].balance -= 5.0
        assert watchdog.check() == []
        # ...so the next excursion fires again
        market.accounts["a"].balance += 5.0
        assert [a.name for a in watchdog.check()] == ["market_balance"]

    def test_observer_protocol_runs_a_sweep(self):
        system = build_system(memory_mb=8)
        watchdog = SLOWatchdog(system).install()
        watchdog(object())  # the injector calls observers with the event
        assert watchdog.checks_run == 1


class TestAlertRecord:
    def test_round_trip_and_summary(self):
        a = Alert("x", "warning", 1.0, 2.0, 1.5, detail="d")
        assert Alert.from_dict(a.to_dict()) == a
        system = build_system(memory_mb=8)
        watchdog = SLOWatchdog(system)
        watchdog.alerts.extend([a, a])
        assert watchdog.n_alerts == 2
        assert watchdog.summary() == {"x": 2}


@pytest.mark.chaos
class TestChaosIntegration:
    def test_run_schedule_collects_slo_alerts(self):
        result = run_schedule("figure2-hang", seed=0, slo=True)
        assert result.completed
        # the hang scenario pushes fault latency past the default p99
        # budget (it did at the time of writing); whatever fired, every
        # alert is structured and the conservation objectives are quiet
        for alert in result.alerts:
            assert alert.name in (
                "fault_p99_latency",
                "failover_time",
                "frame_conservation",
                "market_balance",
            )
            assert alert.severity in ("warning", "critical")
        drift = [
            a
            for a in result.alerts
            if a.name in ("frame_conservation", "market_balance")
        ]
        assert drift == []

    def test_run_schedule_with_telemetry_samples(self):
        result = run_schedule(
            "figure2-crash", seed=1, slo=True, telemetry_interval_us=500.0
        )
        assert result.completed
        assert result.telemetry is not None
        samples = result.telemetry.samples()
        assert samples
        assert "kernel.faults" in samples[-1].values

    def test_custom_policy_reaches_the_watchdog(self):
        policy = SLOPolicy(fault_p99_us=1.0, min_fault_samples=1)
        result = run_schedule("figure2-crash", seed=0, slo_policy=policy)
        assert any(a.name == "fault_p99_latency" for a in result.alerts)
