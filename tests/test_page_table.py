"""Translation structures: the V++ global hash table and the linear table."""

from __future__ import annotations

import pytest

from repro.hw.page_table import GlobalHashPageTable, LinearPageTable, Translation


class TestGlobalHashPageTable:
    def test_insert_then_lookup(self):
        pt = GlobalHashPageTable()
        pt.insert(Translation(1, 5, 42, prot=3))
        entry = pt.lookup(1, 5)
        assert entry is not None
        assert entry.pfn == 42
        assert entry.prot == 3

    def test_miss_returns_none_and_counts(self):
        pt = GlobalHashPageTable()
        assert pt.lookup(1, 5) is None
        assert pt.stats.lookups == 1
        assert pt.stats.misses == 1
        assert pt.stats.hit_rate == 0.0

    def test_reinsert_same_key_updates(self):
        pt = GlobalHashPageTable()
        pt.insert(Translation(1, 5, 42))
        pt.insert(Translation(1, 5, 43))
        entry = pt.lookup(1, 5)
        assert entry is not None and entry.pfn == 43
        assert pt.stats.collisions == 0

    def test_collision_spills_to_overflow(self):
        pt = GlobalHashPageTable(n_entries=1, overflow_entries=4)
        pt.insert(Translation(1, 1, 10))
        pt.insert(Translation(2, 2, 20))  # collides (single slot)
        assert pt.stats.collisions == 1
        assert pt.stats.overflow_inserts == 1
        first = pt.lookup(1, 1)
        assert first is not None and first.pfn == 10  # survived in overflow
        second = pt.lookup(2, 2)
        assert second is not None and second.pfn == 20

    def test_full_overflow_drops_entries_soft(self):
        pt = GlobalHashPageTable(n_entries=1, overflow_entries=1)
        pt.insert(Translation(1, 1, 10))
        pt.insert(Translation(2, 2, 20))
        pt.insert(Translation(3, 3, 30))
        assert pt.stats.dropped == 1  # soft miss, not an error
        latest = pt.lookup(3, 3)
        assert latest is not None and latest.pfn == 30

    def test_remove(self):
        pt = GlobalHashPageTable()
        pt.insert(Translation(1, 5, 42))
        assert pt.remove(1, 5)
        assert pt.lookup(1, 5) is None
        assert not pt.remove(1, 5)

    def test_remove_space_clears_main_and_overflow(self):
        pt = GlobalHashPageTable(n_entries=1, overflow_entries=8)
        pt.insert(Translation(1, 1, 10))
        pt.insert(Translation(1, 2, 11))  # spills the first
        pt.insert(Translation(2, 9, 20))  # spills the second
        removed = pt.remove_space(1)
        assert removed == 2
        assert pt.lookup(1, 1) is None
        assert pt.lookup(1, 2) is None
        survivor = pt.lookup(2, 9)
        assert survivor is not None and survivor.pfn == 20

    def test_entries_enumerates_live(self):
        pt = GlobalHashPageTable()
        for vpn in range(10):
            pt.insert(Translation(1, vpn, vpn))
        assert len(pt.entries()) == 10

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            GlobalHashPageTable(n_entries=0)
        with pytest.raises(ValueError):
            GlobalHashPageTable(overflow_entries=-1)

    def test_paper_default_geometry(self):
        """V++ uses a 64K-entry table with a 32-entry overflow (S3.2)."""
        pt = GlobalHashPageTable()
        assert pt.n_entries == 65536
        assert pt.overflow_entries == 32


class TestLinearPageTable:
    def test_per_space_isolation(self):
        pt = LinearPageTable()
        pt.insert(Translation(1, 5, 42))
        pt.insert(Translation(2, 5, 99))
        one = pt.lookup(1, 5)
        two = pt.lookup(2, 5)
        assert one is not None and one.pfn == 42
        assert two is not None and two.pfn == 99

    def test_remove_and_remove_space(self):
        pt = LinearPageTable()
        for vpn in range(5):
            pt.insert(Translation(7, vpn, vpn))
        assert pt.remove(7, 0)
        assert not pt.remove(7, 0)
        assert not pt.remove(8, 0)
        assert pt.remove_space(7) == 4
        assert pt.remove_space(7) == 0

    def test_entries(self):
        pt = LinearPageTable()
        pt.insert(Translation(1, 1, 1))
        pt.insert(Translation(2, 2, 2))
        assert len(pt.entries()) == 2
