"""The report generator end to end."""

from __future__ import annotations

import io
from contextlib import redirect_stdout

import pytest

from repro.analysis.report import (
    main,
    render_figures,
    render_table1,
    render_tables2_and_3,
)


class TestRenderers:
    def test_table1_text(self):
        text = render_table1()
        assert "Table 1" in text
        assert "107" in text and "379" in text and "175" in text
        assert "0.0%" in text

    def test_tables_2_and_3_text(self):
        t2, t3 = render_tables2_and_3()
        for app in ("diff", "uncompress", "latex"):
            assert app in t2 and app in t3
        assert "3.99" in t2
        assert "372" in t3

    def test_figures_text(self):
        text = render_figures()
        assert "Figure 1" in text and "Figure 2" in text
        assert "MigratePages" in text


@pytest.mark.slow
class TestMainEntryPoint:
    def test_quick_run_prints_everything(self):
        out = io.StringIO()
        with redirect_stdout(out):
            code = main(["--quick"])
        text = out.getvalue()
        assert code == 0
        for marker in (
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "Figure 1",
            "Figure 2",
            "Kernel vs. process-level policy",
        ):
            assert marker in text
