"""Property tests for the dram market: conservation and charge law."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spcm.market import MarketConfig, MemoryMarket

steps = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=10.0),   # dt
        st.floats(min_value=0.0, max_value=100.0),   # holding MB for "a"
        st.floats(min_value=0.0, max_value=5.0),     # IO MB for "b"
    ),
    min_size=1,
    max_size=40,
)


@given(steps)
@settings(max_examples=60)
def test_drams_conserved_under_arbitrary_histories(history):
    market = MemoryMarket(
        MarketConfig(free_when_uncontended=False, savings_tax_threshold=5.0)
    )
    market.open_account("a", income_per_second=7.0)
    market.open_account("b", income_per_second=3.0)
    now = 0.0
    for dt, holding, io_mb in history:
        now += dt
        market.set_holding("a", holding)
        market.advance(now)
        market.charge_io("b", io_mb)
        assert abs(market.total_drams()) < 1e-6


@given(
    st.floats(min_value=0.1, max_value=50.0),
    st.floats(min_value=0.1, max_value=20.0),
    st.floats(min_value=0.1, max_value=10.0),
)
def test_charge_is_exactly_m_d_t(holding_mb, duration, price):
    market = MemoryMarket(
        MarketConfig(
            price_per_mb_second=price,
            income_per_second=0.0,
            savings_tax_rate=0.0,
            free_when_uncontended=False,
        )
    )
    account = market.open_account("p")
    market.set_holding("p", holding_mb)
    market.advance(duration)
    assert abs(
        account.total_memory_charges - holding_mb * price * duration
    ) < 1e-6


@given(st.floats(min_value=0.0, max_value=1000.0), st.floats(0.1, 100.0))
def test_affordable_seconds_is_exact_for_draining_holdings(balance, holding):
    market = MemoryMarket(
        MarketConfig(price_per_mb_second=1.0, income_per_second=0.0)
    )
    account = market.open_account("p")
    account.balance = balance
    horizon = market.affordable_seconds("p", holding)
    assert abs(horizon - balance / holding) < 1e-9
