"""Deadlock detection in the lock manager."""

from __future__ import annotations

import pytest

from repro.dbms.locking import LockManager, LockMode, Transaction
from repro.errors import DeadlockError
from repro.sim.engine import Engine
from repro.sim.process import Delay


@pytest.fixture
def world():
    engine = Engine()
    return engine, LockManager(engine)


class TestDeadlockDetection:
    def test_ab_ba_cycle_detected(self, world):
        engine, locks = world
        outcomes = []

        def t1():
            txn = Transaction(1)
            yield from locks.acquire(txn, "a", LockMode.X)
            yield Delay(10)
            try:
                yield from locks.acquire(txn, "b", LockMode.X)
                outcomes.append("t1-ok")
            except DeadlockError:
                outcomes.append("t1-deadlock")
            locks.release_all(txn)

        def t2():
            txn = Transaction(2)
            yield Delay(1)
            yield from locks.acquire(txn, "b", LockMode.X)
            yield Delay(10)
            try:
                yield from locks.acquire(txn, "a", LockMode.X)
                outcomes.append("t2-ok")
            except DeadlockError:
                outcomes.append("t2-deadlock")
            locks.release_all(txn)

        engine.spawn(t1())
        engine.spawn(t2())
        engine.run()
        assert sorted(outcomes) == ["t1-ok", "t2-deadlock"]
        assert locks.deadlocks_detected == 1
        # after the victim released, nothing is leaked
        assert locks.holders("a") == {}
        assert locks.holders("b") == {}

    def test_three_party_cycle_detected(self, world):
        engine, locks = world
        deadlocks = []

        def txn_proc(i, first, second):
            txn = Transaction(i)
            yield from locks.acquire(txn, first, LockMode.X)
            yield Delay(10)
            try:
                yield from locks.acquire(txn, second, LockMode.X)
            except DeadlockError:
                deadlocks.append(i)
            locks.release_all(txn)

        engine.spawn(txn_proc(1, "a", "b"))
        engine.spawn(txn_proc(2, "b", "c"))
        engine.spawn(txn_proc(3, "c", "a"))
        engine.run()
        assert len(deadlocks) == 1  # exactly one victim breaks the cycle

    def test_upgrade_deadlock_detected(self, world):
        """Two S holders both upgrading to X deadlock on each other."""
        engine, locks = world
        deadlocks = []

        def upgrader(i, wait):
            txn = Transaction(i)
            yield from locks.acquire(txn, "r", LockMode.S)
            yield Delay(wait)
            try:
                yield from locks.acquire(txn, "r", LockMode.X)
            except DeadlockError:
                deadlocks.append(i)
            locks.release_all(txn)

        engine.spawn(upgrader(1, 5))
        engine.spawn(upgrader(2, 6))
        engine.run()
        assert deadlocks == [2]

    def test_plain_contention_is_not_flagged(self, world):
        engine, locks = world

        def holder():
            txn = Transaction(1)
            yield from locks.acquire(txn, "r", LockMode.X)
            yield Delay(100)
            locks.release_all(txn)

        def waiter():
            txn = Transaction(2)
            yield Delay(1)
            yield from locks.acquire(txn, "r", LockMode.X)
            locks.release_all(txn)

        engine.spawn(holder())
        w = engine.spawn(waiter())
        engine.run()
        assert w.finished
        assert locks.deadlocks_detected == 0

    def test_chain_without_cycle_is_not_flagged(self, world):
        engine, locks = world

        def t(i, first, second, delay):
            txn = Transaction(i)
            yield from locks.acquire(txn, first, LockMode.X)
            yield Delay(delay)
            yield from locks.acquire(txn, second, LockMode.X)
            yield Delay(5)
            locks.release_all(txn)

        # ordered acquisition: a chain, never a cycle
        engine.spawn(t(1, "a", "b", 10))

        def t2():
            txn = Transaction(2)
            yield Delay(1)
            yield from locks.acquire(txn, "b", LockMode.X)
            yield Delay(2)
            yield from locks.acquire(txn, "c", LockMode.X)
            yield Delay(5)
            locks.release_all(txn)

        engine.spawn(t2())
        engine.run()
        assert locks.deadlocks_detected == 0
