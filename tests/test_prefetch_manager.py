"""Application-directed read-ahead/writeback and the I/O timeline."""

from __future__ import annotations

import pytest

from repro.core.kernel import Kernel
from repro.core.uio import FileServer
from repro.hw.costs import DECSTATION_5000_200
from repro.hw.disk import Disk
from repro.managers.prefetch_manager import IOTimeline, PrefetchingSegmentManager
from repro.spcm.spcm import SystemPageCacheManager


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel)
    disk = Disk(DECSTATION_5000_200)
    server = FileServer(kernel, disk)
    manager = PrefetchingSegmentManager(
        kernel, spcm, server, initial_frames=64, io_service_us=1000.0
    )
    return kernel, server, manager


class TestIOTimeline:
    def test_requests_serialize(self):
        io = IOTimeline(service_us=100.0)
        assert io.issue(0.0) == 100.0
        assert io.issue(0.0) == 200.0  # queued behind the first
        assert io.issue(500.0) == 600.0  # idle gap, no queueing

    def test_utilization(self):
        io = IOTimeline(100.0)
        io.issue(0.0)
        io.issue(0.0)
        assert io.utilization(400.0) == 0.5
        assert io.utilization(0.0) == 0.0

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            IOTimeline(-1.0)


class TestPrefetch:
    def make_file(self, kernel, server, manager, pages=8):
        seg = kernel.create_segment(pages, name="data", manager=manager)
        server.create_file(seg, data=b"d" * (pages * 4096))
        return seg

    def test_completed_prefetch_costs_nothing(self, world):
        kernel, server, manager = world
        seg = self.make_file(kernel, server, manager)
        manager.prefetch(seg, 0, now_us=0.0)
        stall = manager.access(seg, 0, now_us=5000.0)
        assert stall == 0.0
        assert manager.prefetch_hits == 1

    def test_in_flight_prefetch_stalls_for_remainder(self, world):
        kernel, server, manager = world
        seg = self.make_file(kernel, server, manager)
        completion = manager.prefetch(seg, 0, now_us=0.0)
        assert completion == 1000.0
        stall = manager.access(seg, 0, now_us=400.0)
        assert stall == 600.0
        assert manager.prefetch_partial == 1

    def test_demand_fetch_queues_behind_prefetches(self, world):
        kernel, server, manager = world
        seg = self.make_file(kernel, server, manager)
        manager.prefetch(seg, 0, now_us=0.0)
        manager.prefetch(seg, 1, now_us=0.0)
        stall = manager.access(seg, 5, now_us=0.0)  # demand, 3rd in queue
        assert stall == 3000.0
        assert manager.demand_fetches == 1

    def test_prefetch_range(self, world):
        kernel, server, manager = world
        seg = self.make_file(kernel, server, manager)
        completion = manager.prefetch_range(seg, 0, 4, now_us=0.0)
        assert completion == 4000.0
        assert seg.resident_pages == 4

    def test_prefetch_resident_page_is_noop(self, world):
        kernel, server, manager = world
        seg = self.make_file(kernel, server, manager)
        manager.prefetch(seg, 0, now_us=0.0)
        manager.access(seg, 0, now_us=2000.0)
        assert manager.prefetch(seg, 0, now_us=2000.0) == 2000.0
        assert manager.io.requests == 1

    def test_prefetched_data_is_real(self, world):
        kernel, server, manager = world
        seg = kernel.create_segment(2, name="data", manager=manager)
        server.create_file(seg, data=b"AB" * 4096)
        manager.prefetch(seg, 0, now_us=0.0)
        manager.access(seg, 0, now_us=9999.0)
        assert seg.pages[0].read(0, 2) == b"AB"

    def test_overlap_beats_demand_paging(self, world):
        """The MP3D motivation: prefetch overlaps I/O with compute."""
        kernel, server, manager = world
        seg = self.make_file(kernel, server, manager, pages=8)
        compute_per_page = 2000.0  # > service time: fully overlappable

        # demand paging: stall on every page
        demand_clock = 0.0
        for page in range(8):
            demand_clock += manager.access(seg, page, demand_clock)
            demand_clock += compute_per_page
        for page in range(8):
            manager.reclaim_one(seg, page)
        manager.invalidate_reclaim_cache()
        manager.io.busy_until = 0.0

        # prefetch: issue all early, then compute
        prefetch_clock = 0.0
        manager.prefetch_range(seg, 0, 8, 0.0)
        for page in range(8):
            prefetch_clock += manager.access(seg, page, prefetch_clock)
            prefetch_clock += compute_per_page
        assert prefetch_clock < demand_clock


class TestWritebackOrDiscard:
    def test_clean_page_reclaim_is_free(self, world):
        kernel, server, manager = world
        seg = kernel.create_segment(4, name="data", manager=manager)
        server.create_file(seg, data=b"d" * 4096)
        manager.access(seg, 0, now_us=0.0)
        done = manager.writeback_or_discard(seg, 0, now_us=5000.0)
        assert done == 5000.0
        assert manager.writebacks_issued == 0

    def test_dirty_page_writeback_takes_io_time(self, world):
        kernel, server, manager = world
        seg = kernel.create_segment(4, name="data", manager=manager)
        server.create_file(seg, data=b"d" * 4096)
        manager.access(seg, 0, now_us=0.0, write=True)
        done = manager.writeback_or_discard(seg, 0, now_us=5000.0)
        assert done == 6000.0
        assert manager.writebacks_issued == 1

    def test_discardable_dirty_page_skips_io(self, world):
        """Conserving I/O bandwidth by discarding intermediates (S2.2)."""
        kernel, server, manager = world
        seg = kernel.create_segment(4, name="tmp", manager=manager)
        server.create_file(seg, data=b"d" * 4096)
        manager.access(seg, 0, now_us=0.0, write=True)
        manager.mark_discardable(seg)
        done = manager.writeback_or_discard(seg, 0, now_us=5000.0)
        assert done == 5000.0
        assert manager.discards == 1
        assert manager.writebacks_issued == 0
