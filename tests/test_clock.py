"""Clock replacement and protection-sampling working sets."""

from __future__ import annotations

import pytest

from repro.core.api import ModifyPageFlagsRequest
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.managers.base import GenericSegmentManager
from repro.managers.clock import ClockReplacer, ProtectionClockSampler
from repro.spcm.spcm import SystemPageCacheManager


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel)
    manager = GenericSegmentManager(kernel, spcm, "app", initial_frames=64)
    return kernel, manager


class TestClockReplacer:
    def test_unreferenced_pages_selected_first(self, world):
        kernel, manager = world
        clock = ClockReplacer(manager)
        seg = kernel.create_segment(8, manager=manager)
        for page in range(4):
            kernel.reference(seg, page * 4096)
        # clear REFERENCED on pages 1 and 3 only
        for page in (1, 3):
            kernel.modify_page_flags(
                ModifyPageFlagsRequest(
                    seg, page, 1, clear_flags=PageFlags.REFERENCED
                )
            )
        victims = clock.select_victims(2)
        assert {p for _, p in victims} == {1, 3}

    def test_second_chance_clears_then_selects(self, world):
        kernel, manager = world
        clock = ClockReplacer(manager)
        seg = kernel.create_segment(4, manager=manager)
        for page in range(3):
            kernel.reference(seg, page * 4096)
        # all referenced: first sweep clears, second selects
        victims = clock.select_victims(3)
        assert len(victims) == 3

    def test_referenced_page_survives_when_alternatives_exist(self, world):
        """Invariant 5: pages referenced in the last period are never
        reclaimed while unreferenced pages remain."""
        kernel, manager = world
        clock = ClockReplacer(manager)
        seg = kernel.create_segment(8, manager=manager)
        for page in range(4):
            kernel.reference(seg, page * 4096)
        for page in range(4):
            kernel.modify_page_flags(
                ModifyPageFlagsRequest(
                    seg, page, 1, clear_flags=PageFlags.REFERENCED
                )
            )
        kernel.reference(seg, 2 * 4096)  # re-reference page 2
        victims = clock.select_victims(3)
        assert (seg.seg_id, 2) not in [(s.seg_id, p) for s, p in victims]

    def test_clearing_shoots_down_translations(self, world):
        kernel, manager = world
        clock = ClockReplacer(manager)
        seg = kernel.create_segment(4, manager=manager)
        kernel.reference(seg, 0)
        clock.select_victims(1)  # sweeps and clears REFERENCED
        assert kernel.tlb.lookup(seg.seg_id, 0) is None

    def test_empty_ring(self, world):
        _, manager = world
        assert ClockReplacer(manager).select_victims(4) == []

    def test_pinned_segment_skipped(self, world):
        kernel, manager = world
        clock = ClockReplacer(manager)
        seg = kernel.create_segment(4, manager=manager)
        kernel.reference(seg, 0)
        manager.pin_segment(seg)
        assert clock.select_victims(1) == []


class TestProtectionClockSampler:
    def test_begin_interval_revokes_access(self, world):
        kernel, manager = world
        sampler = ProtectionClockSampler(manager, batch_pages=2)
        seg = kernel.create_segment(8, manager=manager)
        for page in range(4):
            kernel.reference(seg, page * 4096)
        sampler.begin_interval([seg])
        for page in range(4):
            flags = PageFlags(seg.pages[page].flags)
            assert PageFlags.READ not in flags
            assert PageFlags.WRITE not in flags

    def test_fault_restores_a_batch(self, world):
        kernel, manager = world
        sampler = ProtectionClockSampler(manager, batch_pages=4)
        manager.on_protection_fault = (  # type: ignore[method-assign]
            lambda seg, fault: sampler.note_protection_fault(seg, fault.page)
        )
        seg = kernel.create_segment(8, manager=manager)
        for page in range(8):
            kernel.reference(seg, page * 4096)
        sampler.begin_interval([seg])
        faults_before = kernel.stats.faults
        for page in range(4):  # whole batch costs ONE protection fault
            kernel.reference(seg, page * 4096)
        assert kernel.stats.faults == faults_before + 1
        assert sampler.protection_faults == 1

    def test_batching_over_approximates_references(self, world):
        """Invariant 5b: the sampled working set never undercounts."""
        kernel, manager = world
        sampler = ProtectionClockSampler(manager, batch_pages=4)
        manager.on_protection_fault = (  # type: ignore[method-assign]
            lambda seg, fault: sampler.note_protection_fault(seg, fault.page)
        )
        seg = kernel.create_segment(8, manager=manager)
        for page in range(8):
            kernel.reference(seg, page * 4096)
        sampler.begin_interval([seg])
        kernel.reference(seg, 0)  # touch exactly one page
        assert sampler.working_set(seg) >= 1

    def test_smaller_batches_sample_more_precisely(self, world):
        kernel, manager = world
        results = {}
        for batch in (1, 8):
            seg = kernel.create_segment(8, manager=manager)
            sampler = ProtectionClockSampler(manager, batch_pages=batch)
            manager.on_protection_fault = (  # type: ignore[method-assign]
                lambda s, f, smp=sampler: smp.note_protection_fault(s, f.page)
            )
            for page in range(8):
                kernel.reference(seg, page * 4096)
            sampler.begin_interval([seg])
            kernel.reference(seg, 0)
            results[batch] = sampler.working_set(seg)
        assert results[1] == 1
        assert results[8] == 8  # over-approximation from batching

    def test_invalid_batch(self, world):
        _, manager = world
        with pytest.raises(ValueError):
            ProtectionClockSampler(manager, batch_pages=0)
