"""Copy-on-write, end to end through the kernel and a manager."""

from __future__ import annotations

import pytest

from repro.core.api import MigratePagesRequest
from repro.core.faults import FaultKind
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.managers.base import GenericSegmentManager
from repro.spcm.spcm import SystemPageCacheManager


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel)
    manager = GenericSegmentManager(kernel, spcm, "app", initial_frames=64)
    return kernel, manager


def fill_source(kernel, manager, text=b"original") -> object:
    source = kernel.create_segment(4, name="source", manager=manager)
    kernel.reference(source, 0, write=True)
    source.pages[0].write(text)
    return source


class TestCopyOnWrite:
    def test_read_shares_source_frame(self, world):
        kernel, manager = world
        source = fill_source(kernel, manager)
        shadow = kernel.create_segment(
            4, name="shadow", manager=manager, cow_source=source
        )
        frame = kernel.reference(shadow, 0, write=False)
        assert frame is source.pages[0]
        assert shadow.resident_pages == 0  # nothing privatized

    def test_write_privatizes_with_kernel_copy(self, world):
        """'With a copy-on-write fault the kernel performs the copy after
        the manager has allocated a page' (S2.1)."""
        kernel, manager = world
        source = fill_source(kernel, manager, b"original")
        shadow = kernel.create_segment(
            4, name="shadow", manager=manager, cow_source=source
        )
        frame = kernel.reference(shadow, 0, write=True)
        assert frame is not source.pages[0]
        assert frame.read(0, 8) == b"original"  # kernel copied
        assert kernel.stats.cow_copies == 1
        assert kernel.stats.faults_by_kind.get("COPY_ON_WRITE") == 1

    def test_writes_never_alter_the_source(self, world):
        kernel, manager = world
        source = fill_source(kernel, manager, b"original")
        shadow = kernel.create_segment(
            4, name="shadow", manager=manager, cow_source=source
        )
        frame = kernel.reference(shadow, 0, write=True)
        frame.write(b"modified")
        assert source.pages[0].read(0, 8) == b"original"

    def test_reads_after_privatization_see_private_copy(self, world):
        kernel, manager = world
        source = fill_source(kernel, manager, b"original")
        shadow = kernel.create_segment(
            4, name="shadow", manager=manager, cow_source=source
        )
        kernel.reference(shadow, 0, write=True)
        shadow.pages[0].write(b"modified")
        frame = kernel.reference(shadow, 0, write=False)
        assert frame.read(0, 8) == b"modified"

    def test_source_changes_visible_until_privatized(self, world):
        kernel, manager = world
        source = fill_source(kernel, manager, b"v1......")
        shadow = kernel.create_segment(
            4, name="shadow", manager=manager, cow_source=source
        )
        assert kernel.reference(shadow, 0, write=False).read(0, 2) == b"v1"
        source.pages[0].write(b"v2")
        # still shared: the shadow sees the update
        assert kernel.reference(shadow, 0, write=False).read(0, 2) == b"v2"

    def test_shared_mapping_is_never_writable(self, world):
        kernel, manager = world
        source = fill_source(kernel, manager)
        shadow = kernel.create_segment(
            4, name="shadow", manager=manager, cow_source=source
        )
        kernel.reference(shadow, 0, write=False)
        # the cached translation must not allow a silent write
        payload = kernel.tlb.lookup(shadow.seg_id, 0)
        assert payload is not None
        _, writable = payload
        assert not writable

    def test_cow_through_bound_address_space(self, world):
        """The Figure-1 shape: a VAS region bound to a COW image."""
        kernel, manager = world
        source = fill_source(kernel, manager, b"template")
        shadow = kernel.create_segment(
            4, name="shadow", manager=manager, cow_source=source
        )
        vas = kernel.create_segment(8, name="vas")
        vas.bind(4, 4, shadow, 0)
        frame = kernel.reference(vas, 4 * 4096, write=True)
        assert frame.read(0, 8) == b"template"
        frame.write(b"mine....")
        assert source.pages[0].read(0, 8) == b"template"

    def test_private_page_is_dirty(self, world):
        kernel, manager = world
        source = fill_source(kernel, manager)
        shadow = kernel.create_segment(
            4, name="shadow", manager=manager, cow_source=source
        )
        frame = kernel.reference(shadow, 0, write=True)
        assert PageFlags.DIRTY & PageFlags(frame.flags)

    def test_migrate_into_cow_segment_is_the_copy(self, world):
        """Migrating a frame to a COW-shared page privatizes it --- the
        migrate *is* the write (S2.1)."""
        kernel, manager = world
        source = fill_source(kernel, manager, b"original")
        shadow = kernel.create_segment(
            4, name="shadow", manager=manager, cow_source=source
        )
        boot = kernel.initial_segment
        page = next(p for p in sorted(boot.pages) if True)
        result = kernel.migrate_pages(
            MigratePagesRequest(boot, shadow, page, 0, 1)
        )
        frame = shadow.pages[0]
        assert frame.pfn == result.moved_pfns[0]
        assert frame.read(0, 8) == b"original"
        assert kernel.stats.cow_copies == 1
