"""Property-based kernel invariants.

Invariant 1 (DESIGN.md): every physical frame is owned by exactly one
segment at all times, under arbitrary interleavings of migrations,
references, reclamations and segment deletion.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.api import MigratePagesRequest
from repro.core.kernel import Kernel
from repro.errors import KernelError, OutOfFramesError
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.base import GenericSegmentManager
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import SystemPageCacheManager

N_SEGMENTS = 4
PAGES_PER_SEGMENT = 8


class KernelMachine(RuleBasedStateMachine):
    @initialize()
    def boot(self):
        self.kernel = Kernel(PhysicalMemory(256 * 4096))
        self.spcm = SystemPageCacheManager(
            self.kernel, policy=ReservePolicy(reserve_frames=0)
        )
        self.manager = GenericSegmentManager(
            self.kernel, self.spcm, "prop", initial_frames=32
        )
        self.segments = [
            self.kernel.create_segment(
                PAGES_PER_SEGMENT, name=f"s{i}", manager=self.manager
            )
            for i in range(N_SEGMENTS)
        ]

    @rule(
        seg=st.integers(0, N_SEGMENTS - 1),
        page=st.integers(0, PAGES_PER_SEGMENT - 1),
        write=st.booleans(),
    )
    def touch(self, seg, page, write):
        try:
            self.kernel.reference(
                self.segments[seg], page * 4096, write=write
            )
        except OutOfFramesError:
            pass

    @rule(
        seg=st.integers(0, N_SEGMENTS - 1),
        page=st.integers(0, PAGES_PER_SEGMENT - 1),
    )
    def reclaim(self, seg, page):
        segment = self.segments[seg]
        if page in segment.pages:
            self.manager.reclaim_one(segment, page)

    @rule(n=st.integers(1, 8))
    def reclaim_batch(self, n):
        self.manager.reclaim_pages(n)

    @rule(n=st.integers(1, 16))
    def return_frames(self, n):
        self.manager.return_frames(n)

    @rule(n=st.integers(1, 16))
    def request_frames(self, n):
        self.manager.request_frames(n)

    @rule(
        src=st.integers(0, N_SEGMENTS - 1),
        dst=st.integers(0, N_SEGMENTS - 1),
        src_page=st.integers(0, PAGES_PER_SEGMENT - 1),
        dst_page=st.integers(0, PAGES_PER_SEGMENT - 1),
    )
    def migrate_between_segments(self, src, dst, src_page, dst_page):
        source, dest = self.segments[src], self.segments[dst]
        if source is dest:
            return
        if src_page in source.pages and dst_page not in dest.pages:
            self.kernel.migrate_pages(
                MigratePagesRequest(source, dest, src_page, dst_page, 1)
            )
            # bookkeeping the manager would do
            self.manager._resident.pop((source.seg_id, src_page), None)
            self.manager._resident[(dest.seg_id, dst_page)] = None

    @rule(seg=st.integers(0, N_SEGMENTS - 1))
    def recreate_segment(self, seg):
        self.kernel.delete_segment(self.segments[seg])
        self.segments[seg] = self.kernel.create_segment(
            PAGES_PER_SEGMENT, name=f"s{seg}'", manager=self.manager
        )

    @invariant()
    def frames_conserved(self):
        self.kernel.check_frame_conservation()

    @invariant()
    def full_audit_passes(self):
        from repro.analysis.audit import audit_kernel, audit_manager

        report = audit_kernel(self.kernel)
        audit_manager(self.manager, report)
        assert report.ok, report.findings

    @invariant()
    def owner_backrefs_consistent(self):
        for segment in self.kernel.segments():
            for page, frame in segment.pages.items():
                assert frame.owner_segment_id == segment.seg_id
                assert frame.page_index == page

    @invariant()
    def manager_stock_is_backed(self):
        free_seg = self.manager.free_segment
        for slot in self.manager._free_slots:
            assert slot in free_seg.pages


TestKernelMachine = KernelMachine.TestCase
TestKernelMachine.settings = settings(
    max_examples=20, stateful_step_count=50, deadline=None
)
