"""The bench regression gate: direction-aware diffs and exit codes."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.regression import (
    ComparabilityError,
    MetricDelta,
    check_comparable,
    compare,
    extract_metrics,
    load_payload,
    main,
)

TABLE1 = {
    "benchmark": "table1_primitives",
    "schema_version": 1,
    "meta": {"n_nodes": 1, "seed": 0, "quick": False},
    "unit": "us",
    "rows": [
        {"name": "fault", "measured": 100.0, "paper": 100.0,
         "relative_error": 0.0},
        {"name": "read", "measured": 200.0, "paper": 200.0,
         "relative_error": 0.0},
    ],
}

NUMA = {
    "experiment": "numa_scaleout",
    "schema_version": 1,
    "meta": {"memory_mb": 32, "total_faults": 2048,
             "node_counts": [1, 2], "quick": False},
    "results": [
        {"n_nodes": 1, "throughput_faults_per_s": 1000.0,
         "completion_us": 5000.0},
        {"n_nodes": 2, "throughput_faults_per_s": 2000.0,
         "completion_us": 2500.0},
    ],
}

MICRO = {
    "benchmark": "fault_path_micro",
    "schema_version": 1,
    "meta": {"workload": "figure2", "cost_drives": 5, "quick": False},
    "throughput": {"repeats": 30, "faults": 420, "drive_wall_s": 0.02,
                   "build_wall_s": 0.1, "faults_per_sec": 20000.0},
    "allocations": {"faults": 14, "net_blocks": 90, "net_kib": 40.0,
                    "blocks_per_fault": 6.4, "peak_kib": 70.0},
    "service_cost_us": {"samples": 70, "p50": 379.0, "p99": 18321.0,
                        "mean": 8000.0},
}


SERVE = {
    "experiment": "serve",
    "schema_version": 1,
    "meta": {"memory_mb": 8, "n_nodes": 2, "tenants": [1, 8],
             "duration_us": 60000.0, "seed": 42},
    "results": [
        {"n_tenants": 1, "throughput_per_sim_s": 3900.0,
         "tenant_p99_us_worst": 155.0, "fairness_index": 1.0,
         "admitted_rate": 0.58},
        {"n_tenants": 8, "throughput_per_sim_s": 31300.0,
         "tenant_p99_us_worst": 155.0, "fairness_index": 1.0,
         "admitted_rate": 0.58},
    ],
}


def _write(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return path


def _scaled_table1(factor):
    payload = json.loads(json.dumps(TABLE1))
    for row in payload["rows"]:
        row["measured"] *= factor
    return payload


class TestDirectionAwareness:
    def test_lower_better_slowdown_is_regression(self):
        deltas = compare(TABLE1, _scaled_table1(1.2), "t")
        assert all(d.direction == "lower" for d in deltas)
        assert all(d.regression == pytest.approx(0.2) for d in deltas)
        assert all(d.status(0.15) == "REGRESSED" for d in deltas)

    def test_lower_better_speedup_is_improvement(self):
        deltas = compare(TABLE1, _scaled_table1(0.5), "t")
        assert all(d.status(0.15) == "improved" for d in deltas)

    def test_higher_better_throughput_drop_is_regression(self):
        current = json.loads(json.dumps(NUMA))
        for row in current["results"]:
            row["throughput_faults_per_s"] *= 0.5
        deltas = compare(NUMA, current, "n")
        by_name = {d.name: d for d in deltas}
        assert (
            by_name["1-node throughput (faults/s)"].status(0.15)
            == "REGRESSED"
        )
        # completion times unchanged: still ok
        assert by_name["1-node completion (us)"].status(0.15) == "ok"

    def test_serve_fairness_drop_is_regression(self):
        current = json.loads(json.dumps(SERVE))
        for row in current["results"]:
            row["fairness_index"] *= 0.7
        deltas = compare(SERVE, current, "s")
        by_name = {d.name: d for d in deltas}
        assert (
            by_name["1-tenant fairness index"].status(0.15) == "REGRESSED"
        )
        # latency and throughput unchanged: still ok at full strength
        assert by_name["1-tenant worst p99 (us)"].status(0.15) == "ok"
        assert (
            by_name["8-tenant throughput (req/sim-s)"].status(0.15) == "ok"
        )

    def test_serve_p99_blowup_is_regression(self):
        current = json.loads(json.dumps(SERVE))
        current["results"][1]["tenant_p99_us_worst"] *= 1.5
        deltas = compare(SERVE, current, "s")
        by_name = {d.name: d for d in deltas}
        assert by_name["8-tenant worst p99 (us)"].status(0.15) == "REGRESSED"

    def test_identical_payloads_all_ok(self):
        for payload in (TABLE1, NUMA, SERVE):
            deltas = compare(payload, json.loads(json.dumps(payload)), "x")
            assert all(d.status(0.15) == "ok" for d in deltas)
            assert all(d.regression == 0.0 for d in deltas)

    def test_within_tolerance_stays_ok(self):
        deltas = compare(TABLE1, _scaled_table1(1.1), "t")
        assert all(d.status(0.15) == "ok" for d in deltas)
        assert all(d.status(0.05) == "REGRESSED" for d in deltas)


class TestComparability:
    def test_schema_version_mismatch_refused(self):
        other = dict(TABLE1, schema_version=2)
        with pytest.raises(ComparabilityError):
            check_comparable(TABLE1, other, "t")

    def test_meta_mismatch_refused(self):
        other = json.loads(json.dumps(TABLE1))
        other["meta"]["seed"] = 7
        with pytest.raises(ComparabilityError):
            compare(TABLE1, other, "t")

    def test_missing_metric_refused(self):
        other = json.loads(json.dumps(TABLE1))
        other["rows"] = other["rows"][:1]
        with pytest.raises(ComparabilityError):
            compare(TABLE1, other, "t")

    def test_headerless_payload_refused(self, tmp_path):
        _write(tmp_path, "old.json", {"benchmark": "table1_primitives"})
        with pytest.raises(ComparabilityError):
            load_payload(str(tmp_path / "old.json"))

    def test_unknown_kind_refused(self):
        with pytest.raises(ComparabilityError):
            extract_metrics(
                {"schema_version": 1, "meta": {}, "benchmark": "???"}, "p"
            )

    def test_delta_fields(self):
        d = MetricDelta("m", "lower", 100.0, 120.0, 0.2)
        assert d.status(0.15) == "REGRESSED"
        assert d.status(0.25) == "ok"


class TestFaultPathMicro:
    def test_wall_clock_gates_loosely_simulated_gates_tightly(self):
        metrics = extract_metrics(MICRO, "m")
        assert metrics["throughput (faults/s)"][1] == "higher"
        assert metrics["throughput (faults/s)"][2] == 5.0
        assert metrics["service cost p50 (us)"] == (379.0, "lower")

    def test_machine_noise_on_throughput_stays_ok(self):
        # a 40% wall-clock dip is machine noise at 5x scale (gate 75%)
        current = json.loads(json.dumps(MICRO))
        current["throughput"]["faults_per_sec"] *= 0.6
        deltas = compare(MICRO, current, "m")
        by_name = {d.name: d for d in deltas}
        assert by_name["throughput (faults/s)"].status(0.15) == "ok"

    def test_large_throughput_collapse_is_regression(self):
        current = json.loads(json.dumps(MICRO))
        current["throughput"]["faults_per_sec"] *= 0.2
        deltas = compare(MICRO, current, "m")
        by_name = {d.name: d for d in deltas}
        assert by_name["throughput (faults/s)"].status(0.15) == "REGRESSED"

    def test_simulated_cost_drift_is_regression_at_full_strength(self):
        current = json.loads(json.dumps(MICRO))
        current["service_cost_us"]["p50"] *= 1.2
        deltas = compare(MICRO, current, "m")
        by_name = {d.name: d for d in deltas}
        assert by_name["service cost p50 (us)"].status(0.15) == "REGRESSED"
        # and 20% is inside the widened allocation gate (2x -> 30%)
        current2 = json.loads(json.dumps(MICRO))
        current2["allocations"]["blocks_per_fault"] *= 1.2
        deltas2 = compare(MICRO, current2, "m")
        by2 = {d.name: d for d in deltas2}
        assert by2["allocations (blocks/fault)"].status(0.15) == "ok"


class TestCliExitCodes:
    def _dirs(self, tmp_path, current_table1, current_numa=None):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        _write(base, "BENCH_table1.json", TABLE1)
        _write(base, "BENCH_numa_scaleout.json", NUMA)
        _write(base, "BENCH_fault_path_micro.json", MICRO)
        _write(base, "BENCH_serve.json", SERVE)
        _write(cur, "BENCH_table1.json", current_table1)
        _write(cur, "BENCH_numa_scaleout.json", current_numa or NUMA)
        _write(cur, "BENCH_fault_path_micro.json", MICRO)
        _write(cur, "BENCH_serve.json", SERVE)
        return str(base), str(cur)

    def _run(self, base, cur, tolerance=0.15):
        return main(
            [
                "--baseline-dir", base,
                "--current-dir", cur,
                "--tolerance", str(tolerance),
            ]
        )

    def test_identical_exits_zero(self, tmp_path, capsys):
        base, cur = self._dirs(tmp_path, TABLE1)
        assert self._run(base, cur) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_twenty_percent_slowdown_exits_one(self, tmp_path, capsys):
        base, cur = self._dirs(tmp_path, _scaled_table1(1.2))
        assert self._run(base, cur) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_meta_mismatch_exits_two(self, tmp_path, capsys):
        bad = json.loads(json.dumps(TABLE1))
        bad["meta"]["quick"] = True
        base, cur = self._dirs(tmp_path, bad)
        assert self._run(base, cur) == 2
        assert "meta mismatch" in capsys.readouterr().err

    def test_missing_current_file_exits_two(self, tmp_path):
        base, cur = self._dirs(tmp_path, TABLE1)
        os.remove(os.path.join(cur, "BENCH_numa_scaleout.json"))
        assert self._run(base, cur) == 2


class TestCommittedBaselines:
    BASELINES = (
        "BENCH_table1.json",
        "BENCH_numa_scaleout.json",
        "BENCH_fault_path_micro.json",
        "BENCH_serve.json",
    )

    def test_baselines_carry_the_header(self):
        for name in self.BASELINES:
            path = os.path.join("benchmarks", "baselines", name)
            payload = load_payload(path)
            assert payload["schema_version"] == 1
            assert "meta" in payload

    def test_committed_payloads_match_their_baselines(self):
        # the working-tree BENCH files are regenerated artifacts; they
        # must stay comparable to (and within tolerance of) the baselines
        for name in self.BASELINES:
            baseline = load_payload(
                os.path.join("benchmarks", "baselines", name)
            )
            current = load_payload(name)
            deltas = compare(baseline, current, name)
            assert all(d.status(0.15) != "REGRESSED" for d in deltas)
