"""Every example script runs to completion (fast paths)."""

from __future__ import annotations

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def run_main(name: str, argv: list[str] | None = None) -> str:
    module = load(name)
    out = io.StringIO()
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        with redirect_stdout(out):
            module.main()
    finally:
        sys.argv = old_argv
    return out.getvalue()


class TestExamples:
    def test_quickstart(self):
        text = run_main("quickstart")
        assert "107 us" in text
        assert "379 us" in text
        assert "frame conservation holds" in text

    def test_scientific_prefetch(self):
        text = run_main("scientific_prefetch")
        assert "demand paging" in text
        assert "prefetch + discard" in text

    def test_page_coloring(self):
        text = run_main("page_coloring")
        assert "miss rate" in text
        assert "coloring eliminates" in text

    def test_memory_market(self):
        text = run_main("memory_market")
        assert "drams" in text
        assert "conservation holds" in text

    def test_adaptive_applications(self):
        text = run_main("adaptive_applications")
        assert "space-time tradeoff" in text
        assert "adaptive garbage collection" in text

    @pytest.mark.slow
    def test_dbms_transaction_processing_quick(self):
        # the example's default 40 s runs take a few seconds of wall time
        text = run_main("dbms_transaction_processing")
        assert "Table 4" in text
        assert "regenerates the index" in text
