"""The block device."""

from __future__ import annotations

import pytest

from repro.errors import DiskError
from repro.hw.costs import DECSTATION_5000_200
from repro.hw.disk import Disk


def make_disk(**kwargs) -> Disk:
    return Disk(DECSTATION_5000_200, **kwargs)


class TestDisk:
    def test_unwritten_blocks_read_zero(self):
        disk = make_disk()
        data, _ = disk.read_block(5)
        assert data == bytes(4096)

    def test_write_read_roundtrip(self):
        disk = make_disk()
        payload = bytes(range(256)) * 16
        disk.write_block(3, payload)
        data, _ = disk.read_block(3)
        assert data == payload

    def test_write_requires_exact_block(self):
        disk = make_disk()
        with pytest.raises(DiskError):
            disk.write_block(0, b"short")

    def test_block_bounds(self):
        disk = make_disk(capacity_blocks=10)
        with pytest.raises(DiskError):
            disk.read_block(10)
        with pytest.raises(DiskError):
            disk.read_block(-1)

    def test_service_time_model(self):
        disk = make_disk()
        _, us = disk.read_block(0)
        assert us == DECSTATION_5000_200.disk_transfer_us(4096)

    def test_range_read_is_one_seek(self):
        disk = make_disk()
        disk.write_block(0, b"a" * 4096)
        disk.write_block(1, b"b" * 4096)
        data, us = disk.read_range(0, 2)
        assert data == b"a" * 4096 + b"b" * 4096
        single = DECSTATION_5000_200.disk_transfer_us(4096)
        double = DECSTATION_5000_200.disk_transfer_us(8192)
        assert us == double
        assert double < 2 * single  # amortized seek

    def test_range_write(self):
        disk = make_disk()
        disk.write_range(4, b"x" * 8192)
        a, _ = disk.read_block(4)
        b, _ = disk.read_block(5)
        assert a == b"x" * 4096 and b == b"x" * 4096

    def test_range_write_requires_block_multiple(self):
        disk = make_disk()
        with pytest.raises(DiskError):
            disk.write_range(0, b"x" * 100)
        with pytest.raises(DiskError):
            disk.write_range(0, b"")

    def test_range_bounds_checked_before_mutation(self):
        disk = make_disk(capacity_blocks=4)
        with pytest.raises(DiskError):
            disk.write_range(3, b"x" * 8192)
        data, _ = disk.read_block(3)
        assert data == bytes(4096)

    def test_stats(self):
        disk = make_disk()
        disk.write_block(0, b"x" * 4096)
        disk.read_block(0)
        disk.read_range(0, 2)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2
        assert disk.stats.bytes_read == 4096 + 8192
        assert disk.stats.bytes_written == 4096
        assert disk.stats.busy_us > 0

    def test_invalid_geometry(self):
        with pytest.raises(DiskError):
            make_disk(block_size=0)
        with pytest.raises(DiskError):
            make_disk(capacity_blocks=0)
