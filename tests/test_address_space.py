"""Address-space composition (Figure 1)."""

from __future__ import annotations

import pytest

from repro.core.address_space import (
    RegionSpec,
    build_address_space,
    build_figure1_layout,
)
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.errors import SegmentError, UnresolvedFaultError
from repro.managers.base import GenericSegmentManager
from repro.spcm.spcm import SystemPageCacheManager


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel)
    manager = GenericSegmentManager(kernel, spcm, "app", initial_frames=128)
    return kernel, manager


class TestBuilder:
    def test_regions_placed_in_order_with_guards(self, world):
        kernel, manager = world
        vas = build_address_space(
            kernel,
            manager,
            [
                RegionSpec("a", 4),
                RegionSpec("b", 4, guard_pages=2),
                RegionSpec("c", 2, start_page=20),
            ],
        )
        assert vas.region("a").start_page == 0
        assert vas.region("b").start_page == 6
        assert vas.region("c").start_page == 20
        assert vas.space.n_pages == 22

    def test_empty_spec_rejected(self, world):
        kernel, manager = world
        with pytest.raises(SegmentError):
            build_address_space(kernel, manager, [])

    def test_zero_page_region_rejected(self, world):
        kernel, manager = world
        with pytest.raises(SegmentError):
            build_address_space(kernel, manager, [RegionSpec("a", 0)])

    def test_addr_computes_and_bounds(self, world):
        kernel, manager = world
        vas = build_address_space(
            kernel, manager, [RegionSpec("a", 2), RegionSpec("b", 2)]
        )
        assert vas.addr("a", 0) == 0
        assert vas.addr("b", 100) == 2 * 4096 + 100
        with pytest.raises(SegmentError):
            vas.addr("b", 2 * 4096)
        with pytest.raises(SegmentError):
            vas.region("nope")


class TestFigure1:
    def test_layout_shape(self, world):
        kernel, manager = world
        vas = build_figure1_layout(kernel, manager)
        assert set(vas.regions) == {"code", "data", "stack"}
        # guard gaps between the regions, like the figure
        code, data, stack = (
            vas.region("code"),
            vas.region("data"),
            vas.region("stack"),
        )
        assert code.end_page < data.start_page < data.end_page < stack.start_page

    def test_reads_and_writes_land_in_backing_segments(self, world):
        kernel, manager = world
        vas = build_figure1_layout(kernel, manager)
        vas.write(vas.addr("data", 0))
        vas.write(vas.addr("stack", 4096))
        assert vas.region("data").segment.resident_pages == 1
        assert vas.region("stack").segment.resident_pages == 1
        assert vas.region("code").segment.resident_pages == 0

    def test_code_region_rejects_writes(self, world):
        kernel, manager = world
        vas = build_figure1_layout(kernel, manager)
        vas.read(vas.addr("code", 0))
        with pytest.raises(UnresolvedFaultError):
            vas.write(vas.addr("code", 0))

    def test_guard_pages_fault_without_manager(self, world):
        kernel, manager = world
        vas = build_figure1_layout(kernel, manager)
        gap_addr = vas.region("code").end_page * 4096
        from repro.errors import NoManagerError

        with pytest.raises(NoManagerError):
            vas.read(gap_addr)

    def test_describe_mentions_every_region(self, world):
        kernel, manager = world
        vas = build_figure1_layout(kernel, manager)
        text = vas.describe()
        for region in ("code", "data", "stack"):
            assert region in text

    def test_cow_region_spec(self, world):
        kernel, manager = world
        template = kernel.create_segment(8, name="template", manager=manager)
        kernel.reference(template, 0, write=True)
        template.pages[0].write(b"tpl")
        vas = build_address_space(
            kernel,
            manager,
            [RegionSpec("data", 8, copy_on_write_of=template)],
        )
        frame = kernel.reference(vas.space, 0, write=True)
        assert frame.read(0, 3) == b"tpl"
        frame.write(b"new")
        assert template.pages[0].read(0, 3) == b"tpl"
