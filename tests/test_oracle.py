"""The differential oracle: V++ vs the ULTRIX and Unix-retrofit baselines.

Green paths run the reference schedules under every manager kind; red
paths substitute deliberately broken executors and demand each contract
clause catches its own class of divergence.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import VerificationError
from repro.verify.oracle import (
    EXECUTORS,
    ExecutionResult,
    check_equivalence,
    named_schedule,
    run_vpp,
)
from repro.verify.schedule import MANAGER_KINDS

pytestmark = pytest.mark.verify


@pytest.mark.parametrize("manager", MANAGER_KINDS)
@pytest.mark.parametrize("name", ["figure2", "table1"])
def test_reference_schedules_pass_for_every_manager(name, manager):
    report = check_equivalence(named_schedule(name, manager))
    assert report.ok, report.render()
    # all three executors actually ran and are in the report
    assert set(report.results) == set(EXECUTORS)
    assert "PASS" in report.render()


def test_unknown_schedule_name_raises():
    with pytest.raises(VerificationError, match="no schedule named"):
        named_schedule("figure99")


def _broken(transform):
    """An executor that runs V++ for real, then corrupts one field."""

    def run(schedule) -> ExecutionResult:
        result = run_vpp(schedule)
        result.label = "broken"
        transform(result)
        return result

    return run


def _check_broken(transform) -> list[str]:
    schedule = named_schedule("figure2")
    report = check_equivalence(
        schedule, executors={"vpp": run_vpp, "broken": _broken(transform)}
    )
    assert not report.ok
    assert "FAIL" in report.render()
    return [m.clause for m in report.mismatches]


class TestContractClauses:
    def test_written_bytes_divergence_is_caught(self):
        def corrupt(result):
            key = next(iter(result.written_bytes))
            result.written_bytes[key] = b"\x00" * len(
                result.written_bytes[key]
            )

        assert _check_broken(corrupt) == ["written-bytes"]

    def test_file_bytes_divergence_is_caught(self):
        def corrupt(result):
            index = next(iter(result.file_bytes))
            result.file_bytes[index] = result.file_bytes[index] + b"JUNK"

        assert _check_broken(corrupt) == ["file-bytes"]

    def test_anon_page_in_divergence_is_caught(self):
        def corrupt(result):
            result.anon_pages_in += 1

        assert "anon-page-ins" in _check_broken(corrupt)

    def test_fault_count_beyond_tolerance_is_caught(self):
        schedule = named_schedule("figure2")
        tolerance = schedule.fault_tolerance()

        def corrupt(result):
            result.faults += tolerance + 1

        assert "fault-count" in _check_broken(corrupt)

    def test_fault_count_within_tolerance_is_accepted(self):
        def nudge(result):
            result.faults += 1

        schedule = named_schedule("figure2")
        report = check_equivalence(
            schedule, executors={"vpp": run_vpp, "broken": _broken(nudge)}
        )
        assert report.ok, report.render()

    def test_reclamation_flags_the_regime_clause(self):
        def corrupt(result):
            result.reclaimed = 3

        assert _check_broken(corrupt) == ["regime"]

    def test_first_divergence_only_is_reported(self):
        """A written-bytes corruption also corrupts downstream clauses;
        only the first (causal) clause may be reported."""

        def corrupt(result):
            for key in result.written_bytes:
                result.written_bytes[key] = b"x"
            result.anon_pages_in += 5

        clauses = _check_broken(corrupt)
        assert clauses == ["written-bytes"]


def test_invalid_schedule_is_rejected_before_running():
    schedule = named_schedule("figure2")
    bad = replace(schedule, manager="no-such-manager")
    with pytest.raises(VerificationError, match="manager"):
        check_equivalence(bad)
