"""Property-based SPCM tests: random grant/return/pressure histories."""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.analysis.audit import audit_kernel, audit_manager, audit_spcm
from repro.core.kernel import Kernel
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.base import GenericSegmentManager
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import FrameRequest, SystemPageCacheManager

TOTAL_FRAMES = 128
N_MANAGERS = 3


class SPCMMachine(RuleBasedStateMachine):
    """Random allocation traffic from several managers."""

    @initialize()
    def boot(self):
        self.kernel = Kernel(PhysicalMemory(TOTAL_FRAMES * 4096))
        self.spcm = SystemPageCacheManager(
            self.kernel, policy=ReservePolicy(reserve_frames=4)
        )
        self.managers = [
            GenericSegmentManager(
                self.kernel, self.spcm, f"m{i}", initial_frames=0
            )
            for i in range(N_MANAGERS)
        ]
        self.segments = [
            self.kernel.create_segment(16, name=f"s{i}", manager=m)
            for i, m in enumerate(self.managers)
        ]

    @rule(who=st.integers(0, N_MANAGERS - 1), n=st.integers(1, 32))
    def request(self, who, n):
        self.managers[who].request_frames(n)

    @rule(who=st.integers(0, N_MANAGERS - 1), n=st.integers(1, 32))
    def give_back(self, who, n):
        self.managers[who].return_frames(n)

    @rule(
        who=st.integers(0, N_MANAGERS - 1),
        page=st.integers(0, 15),
        write=st.booleans(),
    )
    def touch(self, who, page, write):
        from repro.errors import OutOfFramesError

        try:
            self.kernel.reference(
                self.segments[who], page * 4096, write=write
            )
        except OutOfFramesError:
            pass  # a legal outcome under total exhaustion

    @rule(who=st.integers(0, N_MANAGERS - 1), n=st.integers(1, 16))
    def pressure(self, who, n):
        self.spcm.force_reclaim(self.managers[who], n)

    @rule(
        who=st.integers(0, N_MANAGERS - 1),
        lo=st.integers(0, TOTAL_FRAMES - 1),
        span=st.integers(1, 64),
    )
    def constrained_request(self, who, lo, span):
        manager = self.managers[who]
        pages = self.spcm.request_frames(
            manager,
            FrameRequest(
                manager.account,
                4,
                phys_lo=lo * 4096,
                phys_hi=(lo + span) * 4096,
            ),
            manager.free_segment,
        )
        manager._free_slots.extend(pages)
        for page in pages:
            frame = manager.free_segment.pages[page]
            assert lo * 4096 <= frame.phys_addr < (lo + span) * 4096

    @invariant()
    def frames_add_up(self):
        held = sum(self.spcm.frames_held.values())
        free = self.spcm.available_frames()
        assert held + free == TOTAL_FRAMES

    @invariant()
    def audits_pass(self):
        report = audit_kernel(self.kernel)
        audit_spcm(self.spcm, report)
        for manager in self.managers:
            audit_manager(manager, report)
        assert report.ok, report.findings


TestSPCMMachine = SPCMMachine.TestCase
TestSPCMMachine.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None
)
