"""``repro top``: sparklines, frame rendering, live and replay paths."""

from __future__ import annotations

import pytest

from repro.obs.dashboard import (
    SPARK_GLYPHS,
    main,
    render_frame,
    series,
    sparkline,
)
from repro.obs.slo import Alert
from repro.obs.telemetry import TelemetryCollector, write_jsonl


class TestSparkline:
    def test_empty_series_is_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_mid_bars(self):
        assert sparkline([3.0, 3.0, 3.0]) == SPARK_GLYPHS[4] * 3

    def test_scaling_spans_min_to_max(self):
        line = sparkline([0.0, 50.0, 100.0])
        assert line[0] == SPARK_GLYPHS[1]
        assert line[-1] == SPARK_GLYPHS[8]
        assert len(line) == 3

    def test_window_keeps_the_tail(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10


def _samples():
    c = TelemetryCollector(clock=lambda: 0.0)
    values = {
        "kernel.faults": 8.0,
        "kernel.references": 64.0,
        "kernel.cost_total_us": 1234.0,
        "tlb.hit_rate": 0.875,
        "disk.reads": 8.0,
        "disk.writes": 0.0,
        "faults.latency_ewma_us": 2000.0,
        "faults.observed": 8.0,
        "spcm.node0.free_frames": 100.0,
        "spcm.node0.granted_frames": 28.0,
        "spcm.node0.loaned_grants": 0.0,
        "spcm.node0.retired_frames": 0.0,
        "spcm.node1.free_frames": 90.0,
        "spcm.node1.granted_frames": 38.0,
        "spcm.node1.loaned_grants": 1.0,
        "spcm.node1.retired_frames": 0.0,
        "manager.default-manager.resident_pages": 8.0,
        "manager.default-manager.free_frames": 20.0,
        "manager.default-manager.dram_balance": 128.0,
    }
    for name, value in values.items():
        c.gauge(name, lambda v=value: v)
    out = []
    for _ in range(3):
        out.append(c.sample_now())
    return c, out


class TestRenderFrame:
    def test_empty_buffer_has_a_placeholder(self):
        assert "no telemetry samples yet" in render_frame([])

    def test_panels_cover_nodes_managers_and_hw(self):
        _, samples = _samples()
        frame = render_frame(samples)
        assert "repro top" in frame
        assert "samples=3" in frame
        assert "kernel    faults=8" in frame
        assert "tlb hit=0.875" in frame
        assert "node0" in frame and "node1" in frame
        assert "loaned=   1" in frame
        assert "mgr default-manager" in frame
        assert "drams=" in frame
        assert "\x1b" not in frame  # frames themselves carry no ANSI

    def test_alert_tail_shows_recent_alerts(self):
        _, samples = _samples()
        alerts = [
            Alert(f"a{i}", "warning", float(i), 2.0, 1.0) for i in range(7)
        ]
        frame = render_frame(samples, alerts)
        assert "alerts" in frame
        assert "a6" in frame and "a2" in frame
        assert "a0" not in frame  # only the 5 most recent
        assert "[warning " in frame

    def test_width_clips_every_line(self):
        _, samples = _samples()
        frame = render_frame(samples, width=40)
        assert all(len(line) <= 40 for line in frame.splitlines())

    def test_series_skips_missing_keys(self):
        _, samples = _samples()
        assert series(samples, "kernel.faults") == [8.0, 8.0, 8.0]
        assert series(samples, "absent") == []


class TestReplay:
    def test_replay_renders_written_jsonl(self, tmp_path, capsys):
        collector, _ = _samples()
        alert = Alert("fault_p99_latency", "warning", 500.0, 9.0, 5.0)
        path = tmp_path / "telemetry.jsonl"
        write_jsonl(collector, path, alerts=[alert])
        assert main(["--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "node0" in out
        assert "fault_p99_latency" in out

    def test_replay_of_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["--replay", str(path)]) == 0
        assert "no telemetry samples yet" in capsys.readouterr().out


@pytest.mark.obs_smoke
class TestLiveRun:
    def test_live_no_ansi_prints_final_frame(self, capsys):
        assert main(["--no-ansi", "--faults", "120", "--interval-us",
                     "500"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "kernel    faults=" in out
        assert "node0" in out
        assert "mgr default-manager" in out
        assert "\x1b" not in out  # non-tty stdout: no escape codes
