"""The generic segment manager: stock, reclaim, fast migrate-back."""

from __future__ import annotations

import pytest

from repro.core.api import FrameDemand, ModifyPageFlagsRequest
from repro.core.faults import FaultKind, PageFault
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.errors import ManagerError, OutOfFramesError
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.base import GenericSegmentManager
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import SystemPageCacheManager


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel, policy=ReservePolicy(reserve_frames=8))
    manager = GenericSegmentManager(kernel, spcm, "app", initial_frames=16)
    return kernel, spcm, manager


class TestFrameStock:
    def test_initial_request_fills_free_segment(self, world):
        _, _, manager = world
        assert manager.free_frames == 16
        assert manager.free_segment.resident_pages == 16

    def test_allocate_consumes_stock(self, world):
        _, _, manager = world
        manager.allocate_slot()
        assert manager.free_frames == 15

    def test_allocate_refills_from_spcm_when_empty(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(64, manager=manager)
        for page in range(20):  # more than the initial 16
            kernel.reference(seg, page * 4096)
        assert seg.resident_pages == 20

    def test_out_of_frames_raises(self):
        memory = PhysicalMemory(32 * 4096)
        kernel = Kernel(memory)
        spcm = SystemPageCacheManager(kernel, policy=ReservePolicy(0))
        manager = GenericSegmentManager(kernel, spcm, "m", initial_frames=8)
        # pin everything so reclaim cannot help, then drain
        seg = kernel.create_segment(40, manager=manager)
        manager.pin_segment(seg)
        with pytest.raises(OutOfFramesError):
            for page in range(40):
                kernel.reference(seg, page * 4096)

    def test_return_frames_to_spcm(self, world):
        _, spcm, manager = world
        available = spcm.available_frames()
        returned = manager.return_frames(4)
        assert returned == 4
        assert manager.free_frames == 12
        assert spcm.available_frames() == available + 4

    def test_allocate_run_contiguous(self, world):
        _, _, manager = world
        run = manager.allocate_run(4)
        assert len(run) == 4
        assert run == list(range(run[0], run[0] + 4))


class TestReclamation:
    def test_reclaim_returns_pages_to_stock(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        for page in range(4):
            kernel.reference(seg, page * 4096)
        free_before = manager.free_frames
        reclaimed = manager.reclaim_pages(2)
        assert reclaimed == 2
        assert manager.free_frames == free_before + 2
        assert seg.resident_pages == 2
        kernel.check_frame_conservation()

    def test_fast_migrate_back_restores_data(self, world):
        """'If a given page frame is referenced through the original
        segment before the page frame is reused, the manager simply
        migrates it back' (S2.2) --- data intact, no refill."""
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        frame = kernel.reference(seg, 0, write=True)
        frame.write(b"precious")
        manager.reclaim_one(seg, 0)
        assert 0 not in seg.pages
        back = kernel.reference(seg, 0, write=False)
        assert back is frame
        assert back.read(0, 8) == b"precious"
        assert manager.fast_reclaims == 1

    def test_reused_frame_is_not_migrated_back(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        frame = kernel.reference(seg, 0, write=True)
        frame.write(b"old")
        manager.reclaim_one(seg, 0)
        # drain the stock so the reclaimed frame is reused elsewhere
        other = kernel.create_segment(32, manager=manager)
        for page in range(manager.free_frames):
            kernel.reference(other, page * 4096)
        fresh = kernel.reference(seg, 0, write=False)
        assert manager.fast_reclaims == 0 or fresh is not frame

    def test_invalidate_reclaim_cache(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        kernel.reference(seg, 0, write=True)
        manager.reclaim_one(seg, 0)
        manager.invalidate_reclaim_cache()
        kernel.reference(seg, 0)
        assert manager.fast_reclaims == 0

    def test_dirty_page_writeback_hook_called(self, world):
        kernel, _, manager = world
        written = []
        manager.writeback = lambda seg, page, frame: written.append(page)  # type: ignore[method-assign]
        seg = kernel.create_segment(8, manager=manager)
        kernel.reference(seg, 0, write=True)   # dirty
        kernel.reference(seg, 4096, write=False)  # clean
        manager.reclaim_one(seg, 0)
        manager.reclaim_one(seg, 1)
        assert written == [0]

    def test_reclaim_unresident_page_rejected(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        with pytest.raises(ManagerError):
            manager.reclaim_one(seg, 0)

    def test_fifo_victim_selection_skips_pinned(self, world):
        kernel, _, manager = world
        a = kernel.create_segment(4, manager=manager)
        b = kernel.create_segment(4, manager=manager)
        kernel.reference(a, 0)
        kernel.reference(b, 0)
        manager.pin_segment(a)
        victims = manager.select_victims(2)
        assert (a.seg_id, 0) not in [(s.seg_id, p) for s, p in victims]

    def test_pinned_flag_protects_frame(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(4, manager=manager)
        kernel.reference(seg, 0)
        kernel.modify_page_flags(
            ModifyPageFlagsRequest(seg, 0, set_flags=PageFlags.PINNED)
        )
        assert manager.select_victims(4) == []


class TestKernelEvents:
    def test_segment_deleted_reclaims_everything(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        for page in range(4):
            kernel.reference(seg, page * 4096)
        free_before = manager.free_frames
        kernel.delete_segment(seg)
        assert manager.free_frames == free_before + 4
        kernel.check_frame_conservation()

    def test_release_frames_under_pressure(self, world):
        kernel, spcm, manager = world
        seg = kernel.create_segment(16, manager=manager)
        for page in range(12):
            kernel.reference(seg, page * 4096)
        available = spcm.available_frames()
        freed = manager.release_frames(FrameDemand(8)).n_frames
        assert freed == 8
        assert spcm.available_frames() == available + 8

    def test_cow_fault_does_not_call_fill(self, world):
        kernel, _, manager = world
        filled = []
        original_fill = manager.fill_page
        manager.fill_page = lambda seg, page, frame: filled.append(page)  # type: ignore[method-assign]
        source = kernel.create_segment(4, manager=manager)
        kernel.reference(source, 0, write=True)
        filled.clear()
        shadow = kernel.create_segment(4, manager=manager, cow_source=source)
        kernel.reference(shadow, 0, write=True)
        assert filled == []  # the kernel performed the copy, not the fill
        manager.fill_page = original_fill  # type: ignore[method-assign]
