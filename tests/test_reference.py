"""The reference path: TLB, page table, fault dispatch, dirty tracking."""

from __future__ import annotations

import pytest

from repro.core.api import MigratePagesRequest, ModifyPageFlagsRequest
from repro.core.faults import FaultKind
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.core.manager_api import InvocationMode, SegmentManager
from repro.errors import (
    NoManagerError,
    SegmentError,
    UnresolvedFaultError,
)
from repro.managers.base import GenericSegmentManager
from repro.spcm.spcm import SystemPageCacheManager


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel)
    manager = GenericSegmentManager(kernel, spcm, "app", initial_frames=64)
    return kernel, spcm, manager


class TestFaultDispatch:
    def test_missing_page_fault_fills_page(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        frame = kernel.reference(seg, 0, write=True)
        assert seg.pages[0] is frame
        assert kernel.stats.faults == 1
        assert kernel.stats.faults_by_kind["MISSING_PAGE"] == 1

    def test_no_manager_raises(self, world):
        kernel, _, _ = world
        seg = kernel.create_segment(8)
        with pytest.raises(NoManagerError):
            kernel.reference(seg, 0)

    def test_unresolved_fault_raises_after_retries(self, world):
        kernel, _, _ = world

        class LazyManager(SegmentManager):
            def handle_fault(self, fault):
                pass  # never resolves anything

        seg = kernel.create_segment(8, manager=LazyManager(kernel, "lazy"))
        with pytest.raises(UnresolvedFaultError):
            kernel.reference(seg, 0)

    def test_address_bounds_checked(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(2, manager=manager)
        with pytest.raises(SegmentError):
            kernel.reference(seg, 2 * 4096)
        with pytest.raises(SegmentError):
            kernel.reference(seg, -1)

    def test_manager_call_counted(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        kernel.reference(seg, 0)
        assert kernel.stats.manager_calls["app"] == 1


class TestFaultCosts:
    def test_in_process_fault_costs_107us(self, world):
        kernel, _, manager = world
        assert manager.invocation is InvocationMode.IN_PROCESS
        seg = kernel.create_segment(8, manager=manager)
        snap = kernel.meter.snapshot()
        kernel.reference(seg, 0, write=True)
        assert sum(kernel.meter.delta_since(snap).values()) == 107.0

    def test_separate_process_fault_costs_379us(self, world):
        kernel, spcm, _ = world

        class ServerManager(GenericSegmentManager):
            invocation = InvocationMode.SEPARATE_PROCESS

        server = ServerManager(kernel, spcm, "server", initial_frames=16)
        seg = kernel.create_segment(8, manager=server)
        snap = kernel.meter.snapshot()
        kernel.reference(seg, 0, write=True)
        assert sum(kernel.meter.delta_since(snap).values()) == 379.0


class TestTranslationCaching:
    def test_repeat_access_hits_tlb_free_of_charge(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        kernel.reference(seg, 0, write=True)
        before = kernel.meter.total_us
        hits_before = kernel.tlb.stats.hits
        kernel.reference(seg, 0, write=True)
        assert kernel.meter.total_us == before
        assert kernel.tlb.stats.hits == hits_before + 1

    def test_tlb_eviction_falls_back_to_page_table(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(128, manager=manager)
        for page in range(80):  # overflow the 64-entry TLB
            kernel.reference(seg, page * 4096, write=True)
        refills_before = kernel.meter.counts.get("tlb_refill", 0)
        faults_before = kernel.stats.faults
        kernel.reference(seg, 0, write=True)  # evicted from TLB, in PT
        assert kernel.meter.counts.get("tlb_refill", 0) == refills_before + 1
        assert kernel.stats.faults == faults_before


class TestDirtyTracking:
    def test_read_first_then_write_sets_dirty_exactly(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        frame = kernel.reference(seg, 0, write=False)
        assert not PageFlags.DIRTY & PageFlags(frame.flags)
        kernel.reference(seg, 0, write=True)
        assert PageFlags.DIRTY & PageFlags(frame.flags)

    def test_write_install_is_not_a_manager_fault(self, world):
        """First store to a clean writable page re-enters the kernel but
        is resolved without the manager."""
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        kernel.reference(seg, 0, write=False)
        faults = kernel.stats.faults
        kernel.reference(seg, 0, write=True)
        assert kernel.stats.faults == faults

    def test_referenced_set_on_access(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        frame = kernel.reference(seg, 0, write=False)
        assert PageFlags.REFERENCED & PageFlags(frame.flags)


class TestProtectionFaults:
    def test_revoked_access_faults_to_manager(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        kernel.reference(seg, 0, write=True)
        kernel.modify_page_flags(
            ModifyPageFlagsRequest(
                seg, 0, clear_flags=PageFlags.READ | PageFlags.WRITE
            )
        )
        faults = kernel.stats.faults
        kernel.reference(seg, 0, write=False)  # default manager restores
        assert kernel.stats.faults == faults + 1
        assert kernel.stats.faults_by_kind["PROTECTION"] == 1

    def test_translation_shootdown_on_revoke(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        kernel.reference(seg, 0, write=True)
        kernel.modify_page_flags(
            ModifyPageFlagsRequest(seg, 0, clear_flags=PageFlags.WRITE)
        )
        assert kernel.tlb.lookup(seg.seg_id, 0) is None

    def test_binding_mask_protection_fault(self, world):
        kernel, _, manager = world
        data = kernel.create_segment(8, manager=manager)
        vas = kernel.create_segment(8)
        vas.bind(0, 8, data, 0, prot_mask=PageFlags.READ)
        kernel.reference(vas, 0, write=False)  # fills via manager
        with pytest.raises(UnresolvedFaultError):
            # the manager restores page flags but the binding mask still
            # forbids writes, so the fault persists
            kernel.reference(vas, 0, write=True)


class TestMigrationShootdown:
    def test_migrating_a_mapped_frame_invalidates_translations(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(8, manager=manager)
        frame = kernel.reference(seg, 0, write=True)
        spare = kernel.create_segment(8)
        kernel.migrate_pages(MigratePagesRequest(seg, spare, 0, 0, 1))
        assert kernel.tlb.lookup(seg.seg_id, 0) is None
        assert kernel.page_table.lookup(seg.seg_id, 0) is None
        # next access faults and the manager provides a fresh frame
        faults = kernel.stats.faults
        new_frame = kernel.reference(seg, 0, write=True)
        assert kernel.stats.faults == faults + 1
        assert new_frame is not frame
