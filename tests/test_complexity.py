"""The kernel-vs-policy code split (S3.1 modularity analog)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.complexity import (
    count_code_lines,
    kernel_policy_split,
    render_split,
)


class TestLineCounting:
    def test_counts_ignore_blanks_comments_docstrings(self, tmp_path: Path):
        source = tmp_path / "m.py"
        source.write_text(
            '"""Module docstring\nspanning lines."""\n'
            "\n"
            "# a comment\n"
            "x = 1\n"
            "def f():\n"
            '    """one-line docstring"""\n'
            "    return x\n"
        )
        assert count_code_lines(source) == 3

    def test_empty_file(self, tmp_path: Path):
        source = tmp_path / "empty.py"
        source.write_text("")
        assert count_code_lines(source) == 0


class TestSplit:
    def test_policy_exceeds_kernel(self):
        """The paper's point: most VM code moved out of the kernel ---
        the process-level policy side outweighs what the kernel keeps."""
        split = kernel_policy_split()
        assert split.kernel_lines > 500          # a real kernel model
        assert split.policy_lines > split.kernel_lines * 0.8
        assert 0.3 < split.reduction_fraction < 0.8

    def test_by_package_covers_declared_modules(self):
        split = kernel_policy_split()
        assert set(split.by_package) == {"core", "managers", "spcm"}
        assert all(v > 0 for v in split.by_package.values())

    def test_render(self):
        text = render_split()
        assert "kernel keeps" in text
        assert "process level" in text
