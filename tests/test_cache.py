"""The physically-indexed cache used by the coloring experiments."""

from __future__ import annotations

import pytest

from repro.hw.cache import PhysicallyIndexedCache


class TestPhysicallyIndexedCache:
    def test_geometry(self):
        cache = PhysicallyIndexedCache(64 * 1024, line_size=16, page_size=4096)
        assert cache.n_lines == 4096
        assert cache.n_colors == 16

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            PhysicallyIndexedCache(100, line_size=16)
        with pytest.raises(ValueError):
            PhysicallyIndexedCache(8192, line_size=16, page_size=4096 * 4)

    def test_first_access_misses_second_hits(self):
        cache = PhysicallyIndexedCache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(8)  # same 16-byte line
        assert not cache.access(16)

    def test_conflicting_addresses_evict(self):
        cache = PhysicallyIndexedCache(64 * 1024)
        cache.access(0)
        assert not cache.access(64 * 1024)  # same index, different tag
        assert cache.stats.conflict_evictions == 1
        assert not cache.access(0)  # evicted

    def test_same_color_pages_conflict_entirely(self):
        cache = PhysicallyIndexedCache(64 * 1024, page_size=4096)
        page_a = 0
        page_b = 64 * 1024  # same color as page_a
        assert cache.color_of(page_a) == cache.color_of(page_b)
        cache.access_page(page_a)
        misses = cache.access_page(page_b)
        assert misses == 4096 // 16  # every line conflicts
        assert cache.access_page(page_a) == 4096 // 16  # and back

    def test_different_color_pages_coexist(self):
        cache = PhysicallyIndexedCache(64 * 1024, page_size=4096)
        page_a = 0
        page_b = 4096  # next color
        cache.access_page(page_a)
        cache.access_page(page_b)
        assert cache.access_page(page_a) == 0  # still resident
        assert cache.access_page(page_b) == 0

    def test_access_page_stride(self):
        cache = PhysicallyIndexedCache()
        misses = cache.access_page(0, stride=512)
        assert misses == 4096 // 512

    def test_flush(self):
        cache = PhysicallyIndexedCache()
        cache.access(0)
        cache.flush()
        assert not cache.access(0)

    def test_stats_rates(self):
        cache = PhysicallyIndexedCache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5
        assert cache.stats.hit_rate == 0.5
