"""Copy-on-write address-space duplication (the fork shape)."""

from __future__ import annotations

import pytest

from repro.core.address_space import build_figure1_layout, fork_address_space
from repro.core.kernel import Kernel
from repro.managers.base import GenericSegmentManager
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import SystemPageCacheManager


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel, policy=ReservePolicy(0))
    manager = GenericSegmentManager(kernel, spcm, "proc", initial_frames=256)
    parent = build_figure1_layout(kernel, manager)
    # populate the parent
    for region in ("code", "data", "stack"):
        r = parent.region(region)
        for page in range(r.n_pages):
            addr = parent.addr(region, page * 4096)
            if region == "code":
                parent.read(addr)
            else:
                parent.write(addr)
                r.segment.pages[page].write(f"{region}{page}".encode())
    return kernel, manager, parent


class TestFork:
    def test_child_reads_share_parent_frames(self, world):
        kernel, manager, parent = world
        resident_before = sum(
            r.segment.resident_pages for r in parent.regions.values()
        )
        child = fork_address_space(kernel, manager, parent)
        frame = kernel.reference(child.space, child.addr("data", 0))
        assert frame is parent.region("data").segment.pages[0]
        # no new frames were consumed by the read
        resident_after = sum(
            r.segment.resident_pages for r in parent.regions.values()
        )
        assert resident_after == resident_before

    def test_read_only_code_is_shared_without_shadow(self, world):
        kernel, manager, parent = world
        child = fork_address_space(kernel, manager, parent)
        assert child.region("code").segment is parent.region("code").segment

    def test_child_writes_do_not_leak_to_parent(self, world):
        kernel, manager, parent = world
        child = fork_address_space(kernel, manager, parent)
        frame = kernel.reference(
            child.space, child.addr("data", 0), write=True
        )
        assert frame.read(0, 5) == b"data0"  # inherited contents
        frame.write(b"CHILD")
        parent_frame = kernel.reference(parent.space, parent.addr("data", 0))
        assert parent_frame.read(0, 5) == b"data0"

    def test_parent_writes_after_fork_visible_until_privatized(self, world):
        kernel, manager, parent = world
        child = fork_address_space(kernel, manager, parent)
        parent.region("data").segment.pages[1].write(b"PARENT-UPDATE")
        frame = kernel.reference(child.space, child.addr("data", 4096))
        assert frame.read(0, 13) == b"PARENT-UPDATE"

    def test_two_children_are_independent(self, world):
        kernel, manager, parent = world
        a = fork_address_space(kernel, manager, parent, name="a")
        b = fork_address_space(kernel, manager, parent, name="b")
        fa = kernel.reference(a.space, a.addr("stack", 0), write=True)
        fa.write(b"AAAA")
        fb = kernel.reference(b.space, b.addr("stack", 0), write=True)
        assert fb.read(0, 4) == b"stac"[:4] or fb.read(0, 6) == b"stack0"
        fb.write(b"BBBB")
        assert fa.read(0, 4) == b"AAAA"
        assert (
            parent.region("stack").segment.pages[0].read(0, 6) == b"stack0"
        )

    def test_layout_preserved(self, world):
        kernel, manager, parent = world
        child = fork_address_space(kernel, manager, parent)
        for name, region in parent.regions.items():
            assert child.region(name).start_page == region.start_page
            assert child.region(name).n_pages == region.n_pages
        assert child.space.n_pages == parent.space.n_pages

    def test_conservation_after_fork_storm(self, world):
        kernel, manager, parent = world
        children = [
            fork_address_space(kernel, manager, parent, name=f"c{i}")
            for i in range(4)
        ]
        for child in children:
            for page in range(4):
                kernel.reference(
                    child.space, child.addr("data", page * 4096), write=True
                )
        kernel.check_frame_conservation()
