"""The ULTRIX baseline: in-kernel policy, zero-fill, limited control."""

from __future__ import annotations

import pytest

from repro.baseline.ultrix_vm import ULTRIX_IO_UNIT, UltrixVM
from repro.core.flags import PageFlags
from repro.errors import ProtectionError, SegmentError
from repro.hw.phys_mem import PhysicalMemory


@pytest.fixture
def vm(memory):
    return UltrixVM(memory)


class TestKernelFaults:
    def test_fault_costs_175us(self, vm):
        space = vm.create_space(8)
        before = vm.meter.total_us
        vm.reference(space, 0, write=True)
        assert vm.meter.total_us - before == 175.0

    def test_every_allocation_is_zero_filled(self, vm):
        """The security zeroing V++ avoids for same-user frames."""
        space = vm.create_space(8)
        vm.reference(space, 0)
        vm.reference(space, 4096)
        assert vm.stats.zero_fills == 2
        assert space.pages[0].read(0, 16) == bytes(16)

    def test_repeat_access_does_not_refault(self, vm):
        space = vm.create_space(8)
        vm.reference(space, 0)
        faults = vm.stats.faults
        vm.reference(space, 0)
        vm.reference(space, 100)  # same page
        assert vm.stats.faults == faults

    def test_address_bounds(self, vm):
        space = vm.create_space(2)
        with pytest.raises(SegmentError):
            vm.reference(space, 2 * 4096)

    def test_dirty_and_referenced_maintained(self, vm):
        space = vm.create_space(2)
        frame = vm.reference(space, 0, write=True)
        flags = PageFlags(frame.flags)
        assert PageFlags.DIRTY in flags and PageFlags.REFERENCED in flags

    def test_destroy_space_frees_frames(self, vm):
        space = vm.create_space(8)
        for page in range(4):
            vm.reference(space, page * 4096)
        free_before = len(vm._free)
        vm.destroy_space(space)
        assert len(vm._free) == free_before + 4


class TestReclamation:
    def test_kernel_reclaims_invisibly(self):
        vm = UltrixVM(PhysicalMemory(8 * 4096))
        space = vm.create_space(16)
        for page in range(8):
            vm.reference(space, page * 4096)
        vm.reference(space, 8 * 4096)  # forces reclaim
        assert vm.stats.reclaimed_pages > 0

    def test_dirty_reclaim_pays_pageout(self):
        vm = UltrixVM(PhysicalMemory(8 * 4096))
        space = vm.create_space(16)
        for page in range(8):
            vm.reference(space, page * 4096, write=True)
        vm.reference(space, 8 * 4096)
        assert vm.stats.pageouts > 0

    def test_pinned_pages_survive_reclaim(self):
        vm = UltrixVM(PhysicalMemory(8 * 4096))
        space = vm.create_space(16)
        vm.reference(space, 0)
        vm.mpin(space, 0, 1)
        for page in range(1, 9):
            vm.reference(space, page * 4096)
        assert 0 in space.pages


class TestUserLevelFaults:
    def test_signal_mprotect_path_costs_152us(self, vm):
        space = vm.create_space(4)
        vm.reference(space, 0)

        def handler(vm_, space_, vpn, write):
            vm_.mprotect(space_, vpn, 1, PageFlags.READ | PageFlags.WRITE)

        vm.set_user_handler(space, handler)
        vm.mprotect(space, 0, 1, PageFlags.NONE)
        before = vm.meter.total_us
        vm.reference(space, 0)
        assert vm.meter.total_us - before == 152.0
        assert vm.stats.protection_signals == 1

    def test_no_handler_raises(self, vm):
        space = vm.create_space(4)
        vm.reference(space, 0)
        vm.mprotect(space, 0, 1, PageFlags.NONE)
        with pytest.raises(ProtectionError):
            vm.reference(space, 0)

    def test_handler_must_restore_access(self, vm):
        space = vm.create_space(4)
        vm.reference(space, 0)
        vm.set_user_handler(space, lambda *a: None)
        vm.mprotect(space, 0, 1, PageFlags.NONE)
        with pytest.raises(ProtectionError):
            vm.reference(space, 0)

    def test_mprotect_bounds(self, vm):
        space = vm.create_space(4)
        with pytest.raises(SegmentError):
            vm.mprotect(space, 3, 2, PageFlags.READ)


class TestConventionalControl:
    def test_pin_quota_is_system_wide(self):
        vm = UltrixVM(PhysicalMemory(64 * 4096), pin_quota=4)
        a, b = vm.create_space(8), vm.create_space(8)
        assert vm.mpin(a, 0, 3) == 3
        assert vm.mpin(b, 0, 3) == 1  # quota exhausted across spaces
        vm.munpin(a, 0, 3)
        assert vm.mpin(b, 3, 3) == 3

    def test_madvise_changes_nothing(self, vm):
        """The paper's complaint: advice is accepted and ignored."""
        space = vm.create_space(8)
        vm.reference(space, 0)
        vm.madvise(space, 0, 8, "WILLNEED")
        assert vm.stats.madvise_calls == 1
        assert space.pages.keys() == {0}  # nothing prefetched


class TestFileIO:
    def test_cached_read_costs_211us(self, vm):
        vm.create_file("f", data=b"x" * 4096)
        vm.cache_file("f")
        before = vm.meter.total_us
        assert vm.read("f", 0, 4096) == b"x" * 4096
        assert vm.meter.total_us - before == 211.0

    def test_cached_write_costs_311us(self, vm):
        vm.create_file("f", data=b"x" * 4096)
        vm.cache_file("f")
        before = vm.meter.total_us
        vm.write("f", 0, b"y" * 4096)
        assert vm.meter.total_us - before == 311.0

    def test_uncached_read_pays_disk(self, vm):
        vm.create_file("f", data=b"x" * 4096)
        before = vm.meter.total_us
        vm.read("f", 0, 4096)
        assert vm.meter.total_us - before > 1000.0
        assert vm.stats.pageins == 1
        # second read is cached
        before = vm.meter.total_us
        vm.read("f", 0, 4096)
        assert vm.meter.total_us - before == 211.0

    def test_write_extends_file(self, vm):
        vm.create_file("f")
        vm.write("f", 0, b"abc")
        vm.write("f", 3, b"def")
        assert vm.read("f", 0, 6) == b"abcdef"

    def test_read_clamps_at_eof(self, vm):
        vm.create_file("f", data=b"short")
        assert vm.read("f", 0, 100) == b"short"
        assert vm.read("f", 10, 5) == b""

    def test_io_unit_is_8kb(self):
        assert ULTRIX_IO_UNIT == 8192

    def test_duplicate_file_rejected(self, vm):
        vm.create_file("f")
        with pytest.raises(SegmentError):
            vm.create_file("f")
