"""Unit tests for the TP simulator's components."""

from __future__ import annotations

import pytest

from repro.dbms.locking import LockManager
from repro.dbms.relations import bank_database
from repro.dbms.simulator import TPConfig, run_tp_experiment
from repro.dbms.transactions import (
    IndexPolicy,
    TPContext,
    debit_credit,
    join_transaction,
    use_cpu,
)
from repro.dbms.workload import TransactionMix
from repro.sim.engine import Engine
from repro.sim.resources import Resource
from repro.sim.rng import RandomSource


def make_ctx(n_cpus=2, policy=IndexPolicy.NONE, **cfg):
    engine = Engine()
    config = TPConfig(policy=policy, **cfg)
    ctx = TPContext(
        engine=engine,
        cpu=Resource(engine, n_cpus),
        locks=LockManager(engine),
        db=bank_database(16),
        config=config,
        rng=RandomSource(5),
    )
    return engine, ctx


class TestUseCpu:
    def test_holds_and_releases(self):
        engine, ctx = make_ctx(n_cpus=1)

        def proc():
            yield from use_cpu(ctx, 100.0)
            yield from use_cpu(ctx, 50.0)

        p = engine.spawn(proc())
        engine.run()
        assert p.finished
        assert engine.now == 150.0
        assert ctx.cpu.in_use == 0
        assert ctx.cpu_busy_us == 150.0

    def test_zero_compute_is_free(self):
        engine, ctx = make_ctx()

        def proc():
            yield from use_cpu(ctx, 0.0)

        engine.spawn(proc())
        engine.run()
        assert engine.now == 0.0

    def test_cpu_contention_serializes(self):
        engine, ctx = make_ctx(n_cpus=1)

        def proc():
            yield from use_cpu(ctx, 100.0)

        engine.spawn(proc())
        engine.spawn(proc())
        engine.run()
        assert engine.now == 200.0


class TestTransactionProcesses:
    def test_debit_credit_completes_and_records(self):
        engine, ctx = make_ctx()
        engine.spawn(debit_credit(ctx, 1, measured=True))
        engine.run()
        assert ctx.completed == 1
        assert ctx.response_dc.count == 1
        # service >= the configured compute
        assert ctx.response_dc.mean >= ctx.config.dc_compute_us

    def test_unmeasured_transactions_not_recorded(self):
        engine, ctx = make_ctx()
        engine.spawn(debit_credit(ctx, 1, measured=False))
        engine.run()
        assert ctx.completed == 1
        assert ctx.response_all.count == 0

    def test_join_without_index_scans(self):
        engine, ctx = make_ctx(policy=IndexPolicy.NONE)
        engine.spawn(join_transaction(ctx, 1, measured=True))
        engine.run()
        assert ctx.response_join.count == 1
        assert ctx.response_join.mean >= ctx.config.join_scan_compute_us

    def test_join_releases_every_lock(self):
        engine, ctx = make_ctx(policy=IndexPolicy.NONE)
        engine.spawn(join_transaction(ctx, 1, measured=True))
        engine.run()
        assert ctx.locks.holders(("rel", "accounts")) == {}
        assert ctx.locks.holders("db") == {}

    def test_join_blocks_debit_credits_via_relation_lock(self):
        """The coupling Table 4 rests on, at process level."""
        engine, ctx = make_ctx(n_cpus=4, policy=IndexPolicy.NONE)
        engine.spawn(join_transaction(ctx, 1, measured=True))

        def late_dc():
            # arrives while the join holds accounts S
            from repro.sim.process import Delay

            yield Delay(1000.0)
            yield from debit_credit(ctx, 2, True)

        engine.spawn(late_dc())
        engine.run()
        dc_response = ctx.response_dc.maximum
        # blocked for nearly the whole scan, far above its own service
        assert dc_response > ctx.config.join_scan_compute_us / 2


class TestMixAndUtilization:
    def test_transaction_mix_properties(self):
        mix = TransactionMix()
        assert mix.arrival_tps == 40.0
        assert mix.join_fraction == 0.05
        assert mix.mean_interarrival_us == 25_000.0

    def test_cpu_utilization_reported_and_sane(self):
        result = run_tp_experiment(
            TPConfig(
                policy=IndexPolicy.IN_MEMORY, duration_s=20.0, warmup_s=2.0
            )
        )
        utilization = result.extra["cpu_utilization"]
        # offered load: 38 tps x 18 ms + 2 tps x 110 ms over 6 CPUs ~ 15%
        assert 0.05 < utilization < 0.40

    def test_no_index_config_runs_hotter(self):
        cool = run_tp_experiment(
            TPConfig(policy=IndexPolicy.IN_MEMORY, duration_s=20.0, seed=3)
        )
        hot = run_tp_experiment(
            TPConfig(policy=IndexPolicy.NONE, duration_s=20.0, seed=3)
        )
        assert (
            hot.extra["cpu_utilization"] > cool.extra["cpu_utilization"]
        )
