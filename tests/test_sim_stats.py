"""Statistics collectors and random streams."""

from __future__ import annotations

import pytest

from repro.sim.rng import RandomSource
from repro.sim.stats import Tally, UtilizationTracker


class TestTally:
    def test_empty(self):
        t = Tally()
        assert t.count == 0
        assert t.mean == 0.0
        assert t.maximum == 0.0
        assert t.percentile(50) == 0.0

    def test_moments(self):
        t = Tally()
        for v in (1.0, 2.0, 3.0, 4.0):
            t.record(v)
        assert t.mean == 2.5
        assert t.maximum == 4.0
        assert t.minimum == 1.0
        assert t.total == 10.0
        assert abs(t.stddev - 1.2909944) < 1e-6

    def test_percentiles_nearest_rank(self):
        t = Tally()
        for v in range(1, 101):
            t.record(float(v))
        assert t.percentile(50) == 50.0
        assert t.percentile(95) == 95.0
        assert t.percentile(100) == 100.0
        assert t.percentile(0) == 1.0

    def test_percentile_bounds(self):
        t = Tally()
        t.record(1.0)
        with pytest.raises(ValueError):
            t.percentile(101)

    def test_values_copy(self):
        t = Tally()
        t.record(1.0)
        vs = t.values()
        vs.append(99.0)
        assert t.count == 1


class TestUtilizationTracker:
    def test_area_accumulates(self):
        u = UtilizationTracker()
        u.update(0.0, 2.0)
        u.update(10.0, 4.0)   # level 2 for 10
        u.update(15.0, 0.0)   # level 4 for 5
        assert u.area == 2.0 * 10 + 4.0 * 5
        assert u.mean_level(20.0) == (20 + 20) / 20.0
        assert u.peak == 4.0

    def test_time_cannot_go_backwards(self):
        u = UtilizationTracker()
        u.update(5.0, 1.0)
        with pytest.raises(ValueError):
            u.update(4.0, 1.0)

    def test_mean_level_zero_horizon(self):
        assert UtilizationTracker().mean_level(0.0) == 0.0


class TestRandomSource:
    def test_deterministic_with_seed(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_substreams_are_independent_of_consumption(self):
        a = RandomSource(7)
        first = a.substream("x").random()
        b = RandomSource(7)
        b.random()  # consume from the parent first
        assert b.substream("x").random() == first

    def test_substream_identity(self):
        a = RandomSource(7)
        assert a.substream("x") is a.substream("x")

    def test_exponential_mean(self):
        rng = RandomSource(3)
        n = 20000
        mean = sum(rng.exponential(10.0) for _ in range(n)) / n
        assert abs(mean - 10.0) < 0.3
        with pytest.raises(ValueError):
            rng.exponential(0.0)

    def test_bernoulli(self):
        rng = RandomSource(3)
        n = 20000
        hits = sum(rng.bernoulli(0.25) for _ in range(n))
        assert abs(hits / n - 0.25) < 0.02
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)

    def test_randint_bounds(self):
        rng = RandomSource(3)
        values = {rng.randint(2, 4) for _ in range(200)}
        assert values == {2, 3, 4}

    def test_choice_and_shuffle(self):
        rng = RandomSource(3)
        items = [1, 2, 3, 4]
        assert rng.choice(items) in items
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
