"""Property test: random address-space layouts resolve consistently."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address_space import RegionSpec, build_address_space
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.base import GenericSegmentManager
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import SystemPageCacheManager

region_specs = st.lists(
    st.tuples(
        st.integers(1, 6),    # pages
        st.integers(0, 4),    # guard pages
        st.booleans(),        # writable?
    ),
    min_size=1,
    max_size=6,
)


def build_world():
    kernel = Kernel(PhysicalMemory(512 * 4096))
    spcm = SystemPageCacheManager(kernel, policy=ReservePolicy(0))
    manager = GenericSegmentManager(kernel, spcm, "prop", initial_frames=128)
    return kernel, manager


@given(region_specs)
@settings(max_examples=40, deadline=None)
def test_every_region_page_resolves_to_its_own_segment(layout):
    kernel, manager = build_world()
    specs = [
        RegionSpec(
            f"r{i}",
            pages,
            prot=PageFlags.rw() if writable else PageFlags.READ,
            guard_pages=guard,
        )
        for i, (pages, guard, writable) in enumerate(layout)
    ]
    vas = build_address_space(kernel, manager, specs)
    # regions never overlap
    spans = sorted(
        (r.start_page, r.end_page) for r in vas.regions.values()
    )
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert end <= start
    # every page of every region resolves to that region's segment
    for spec in specs:
        region = vas.region(spec.name)
        for page in range(region.n_pages):
            res = vas.space.resolve(region.start_page + page)
            assert res.owner is region.segment
            assert res.page == page
    # every gap page resolves to the space itself with no frame
    covered = {
        p
        for r in vas.regions.values()
        for p in range(r.start_page, r.end_page)
    }
    for page in range(vas.space.n_pages):
        if page not in covered:
            res = vas.space.resolve(page)
            assert res.owner is vas.space
            assert res.frame is None


@given(region_specs)
@settings(max_examples=25, deadline=None)
def test_touching_every_writable_region_fills_exactly_its_pages(layout):
    kernel, manager = build_world()
    specs = [
        RegionSpec(f"r{i}", pages, guard_pages=guard)
        for i, (pages, guard, _) in enumerate(layout)
    ]
    vas = build_address_space(kernel, manager, specs)
    for spec in specs:
        region = vas.region(spec.name)
        for page in range(region.n_pages):
            vas.write(vas.addr(spec.name, page * 4096))
    for spec in specs:
        region = vas.region(spec.name)
        assert region.segment.resident_pages == region.n_pages
    kernel.check_frame_conservation()
