"""The experiment drivers: every table and figure regenerates."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    figure1_address_space,
    figure2_fault_trace,
    table1_primitives,
)
from repro.analysis.tables import format_table, ratio


class TestTable1Driver:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.name: r for r in table1_primitives()}

    def test_every_primitive_matches_paper_exactly(self, rows):
        for name, row in rows.items():
            assert row.measured == row.paper, name

    def test_paper_values_present(self, rows):
        values = {r.paper for r in rows.values()}
        assert {107.0, 379.0, 175.0, 222.0, 203.0, 211.0, 311.0, 152.0} == values

    def test_relative_error_zero(self, rows):
        assert all(r.relative_error == 0.0 for r in rows.values())


class TestFigureDrivers:
    def test_figure1_names_all_regions_and_translations(self):
        text = figure1_address_space()
        for token in ("code", "data", "stack", "pfn", "vaddr"):
            assert token in text

    def test_figure2_trace_has_the_five_roles(self):
        trace = figure2_fault_trace()
        actors = {s.actor for s in trace.steps}
        assert {"application", "kernel", "manager", "file server"} <= actors
        rendered = trace.render()
        assert "MigratePages" in rendered
        assert trace.total_cost_us > 0

    def test_figure2_step_order(self):
        trace = figure2_fault_trace()
        actor_sequence = [s.actor for s in trace.steps]
        # fault first, file server before the migrate, resume last
        assert actor_sequence[0] == "application"
        assert actor_sequence[-1] == "manager"
        assert actor_sequence.index("file server") < [
            i
            for i, s in enumerate(trace.steps)
            if "MigratePages" in s.action
        ].pop()


class TestTableFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            "T", ("name", "v"), [("a", 1), ("long-name", 22)], caption="c"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in text and "c" in text
        # numeric column right-aligned (rows precede the rule and caption)
        assert lines[-3].endswith("22")

    def test_ratio(self):
        assert ratio(50.0, 100.0) == "0.50x"
        assert ratio(1.0, 0.0) == "-"
