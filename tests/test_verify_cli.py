"""Exit-code contract of ``python -m repro verify``.

0: all checks passed.  1: a real divergence or mismatch.  2: the inputs
are not comparable with this tree (foreign ``DIGEST_VERSION``, malformed
schedule) --- distinct so CI can tell "broken" from "stale".
"""

from __future__ import annotations

import json

import pytest

from repro.verify.cli import EXIT_INCOMPARABLE, main
from repro.verify.digest import DIGEST_VERSION
from repro.verify.oracle import named_schedule

pytestmark = pytest.mark.verify


def test_determinism_subcommand_passes(capsys):
    code = main(["determinism", "--workload", "figure2"])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_determinism_accepts_a_schedule_json(tmp_path, capsys):
    path = tmp_path / "fig2.json"
    named_schedule("figure2").save(str(path))
    code = main(["determinism", "--workload", str(path), "--chaos-seed", "3"])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_oracle_subcommand_single_manager(capsys):
    code = main(["oracle", "--schedule", "table1", "--manager", "dbms"])
    assert code == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "'dbms'" in out


def test_fuzz_subcommand_small_campaign(tmp_path, capsys):
    code = main(
        ["fuzz", "--schedules", "4", "--seed", "42",
         "--corpus", str(tmp_path)]
    )
    assert code == 0
    assert "PASS" in capsys.readouterr().out
    # a green campaign writes nothing to the corpus
    assert not list(tmp_path.glob("*.json"))


def test_replay_of_an_explicit_green_entry(tmp_path, capsys):
    path = tmp_path / "entry.json"
    named_schedule("table1", manager="clock").save(str(path))
    code = main(["replay", str(path)])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_replay_with_no_entries_is_incomparable(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)  # no tests/corpus here
    code = main(["replay"])
    assert code == EXIT_INCOMPARABLE
    assert "no corpus entries" in capsys.readouterr().err


def test_unknown_workload_is_incomparable(capsys):
    code = main(["determinism", "--workload", "no-such"])
    assert code == EXIT_INCOMPARABLE
    assert "verify:" in capsys.readouterr().err


class TestDigestVersionGate:
    def _stale_entry(self, tmp_path):
        path = tmp_path / "stale.json"
        payload = named_schedule("figure2").to_payload()
        assert payload["digest_version"] == DIGEST_VERSION
        payload["digest_version"] = DIGEST_VERSION - 1
        path.write_text(json.dumps(payload))
        return path

    def test_stale_digest_version_exits_2_on_replay(self, tmp_path, capsys):
        path = self._stale_entry(tmp_path)
        code = main(["replay", str(path)])
        assert code == EXIT_INCOMPARABLE
        err = capsys.readouterr().err
        assert "digest version" in err and "not comparable" in err

    def test_stale_digest_version_exits_2_on_determinism(
        self, tmp_path, capsys
    ):
        path = self._stale_entry(tmp_path)
        code = main(["determinism", "--workload", str(path)])
        assert code == EXIT_INCOMPARABLE
        assert "digest version" in capsys.readouterr().err

    def test_malformed_schedule_exits_2(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text(json.dumps({"digest_version": DIGEST_VERSION}))
        code = main(["replay", str(path)])
        assert code == EXIT_INCOMPARABLE
        assert "verify:" in capsys.readouterr().err
