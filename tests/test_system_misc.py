"""System construction, error hierarchy, and multi-space isolation."""

from __future__ import annotations

import pytest

import repro.errors as errors
from repro import build_system
from repro.hw.costs import SGI_4D_380
from repro.managers.base import GenericSegmentManager


class TestBuildSystem:
    def test_components_are_wired_together(self, system):
        assert system.kernel.memory is system.memory
        assert system.uio.kernel is system.kernel
        assert system.uio.file_server is system.file_server
        assert system.file_server.disk is system.disk
        assert system.meter is system.kernel.meter

    def test_default_manager_is_stocked(self, system):
        assert system.default_manager.free_frames == 128

    def test_memory_size_honored(self):
        system = build_system(memory_mb=4)
        assert system.memory.size_bytes == 4 * 1024 * 1024

    def test_alternate_machine_costs(self):
        system = build_system(memory_mb=4, costs=SGI_4D_380)
        assert system.kernel.costs is SGI_4D_380

    def test_page_size_override(self):
        system = build_system(memory_mb=4, page_size=8192)
        assert system.memory.page_size == 8192
        assert system.kernel.initial_segment.page_size == 8192


class TestErrorHierarchy:
    def test_every_error_is_a_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_kernel_errors_grouped(self):
        for cls in (
            errors.SegmentError,
            errors.ProtectionError,
            errors.MigrationError,
            errors.BindingError,
            errors.UnresolvedFaultError,
            errors.NoManagerError,
            errors.UIOError,
        ):
            assert issubclass(cls, errors.KernelError)

    def test_specific_groupings(self):
        assert issubclass(errors.OutOfFramesError, errors.ManagerError)
        assert issubclass(errors.InsufficientFundsError, errors.SPCMError)
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.LockProtocolError, errors.DBMSError)


class TestMultiSpaceIsolation:
    def test_same_vpn_in_different_spaces_is_distinct(self, system):
        kernel = system.kernel
        manager = GenericSegmentManager(
            kernel, system.spcm, "iso", initial_frames=64
        )
        spaces = [
            kernel.create_segment(8, name=f"space{i}", manager=manager)
            for i in range(4)
        ]
        frames = [kernel.reference(s, 0, write=True) for s in spaces]
        assert len({f.pfn for f in frames}) == 4
        for i, frame in enumerate(frames):
            frame.write(bytes([i]))
        # caches are per-space: re-access returns each space's own frame
        for i, space in enumerate(spaces):
            assert kernel.reference(space, 0).read(0, 1) == bytes([i])

    def test_interleaved_accesses_thrash_tlb_not_correctness(self, system):
        kernel = system.kernel
        manager = GenericSegmentManager(
            kernel, system.spcm, "iso2", initial_frames=512
        )
        spaces = [
            kernel.create_segment(40, name=f"s{i}", manager=manager)
            for i in range(3)
        ]
        for sweep in range(2):
            for page in range(40):
                for i, space in enumerate(spaces):
                    frame = kernel.reference(
                        space, page * 4096, write=(sweep == 0)
                    )
                    if sweep == 0:
                        frame.write(bytes([i, page]))
                    else:
                        assert frame.read(0, 2) == bytes([i, page])
        assert kernel.tlb.stats.evictions > 0  # 120 pages through 64 entries
        kernel.check_frame_conservation()
