"""The multi-tenant serving layer: admission, batching, quotas.

Unit coverage for the token bucket, the admission controller's three
shed reasons (every shed a typed :class:`~repro.core.api.RetryAfter`),
and the batch scheduler's one-refill-per-batch contract; integration
coverage for the typed ``AdmitTenant`` entry, quota deferral (a tenant
over quota thrashes its own residents, it is never refused), and the
closed-loop load generator; and a hypothesis property driving randomized
admit/run/shed/crash interleavings twice each, asserting frame and
dram-quota conservation (the invariant checker's quota sweep) and
bit-identical serving digests.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.harness import build_workload_system
from repro.chaos.injector import Injector
from repro.chaos.invariants import InvariantChecker
from repro.chaos.plan import ChaosPlan
from repro.core.api import AdmitTenantRequest, RetryAfter, TenantQuota
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.loadgen import (
    SERVING_SCHEDULES,
    admit_fleet,
    run_load,
)
from repro.serve.tenants import ServingSystem


def build_serving(seed=0, **kwargs):
    """A small 2-node machine with a serving layer over it."""
    system = build_workload_system(n_nodes=2)
    return system, ServingSystem(system, seed=seed, **kwargs)


# ---------------------------------------------------------------------------
# token bucket
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_dry(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=2.0)
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) == 0.0
        wait = bucket.try_take(0.0)
        # one token at 1000/s is 1000 us away
        assert wait == pytest.approx(1000.0)

    def test_refills_from_simulated_time(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=1.0)
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) > 0.0
        # 1 ms later the single token has accrued again
        assert bucket.try_take(1000.0) == 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=3.0)
        bucket.try_take(0.0)
        # an hour of idle accrues at most `burst` tokens
        for _ in range(3):
            assert bucket.try_take(3.6e9) == 0.0
        assert bucket.try_take(3.6e9) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0.5)


# ---------------------------------------------------------------------------
# admission controller: three shed reasons, all typed
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_admission_shed_is_typed_with_horizon(self):
        ac = AdmissionController(rate_per_s=1000.0, burst=1.0)
        assert ac.admit_tenant("t") is None
        assert ac.try_admit("t", 0.0) is None
        shed = ac.try_admit("t", 0.0)
        assert isinstance(shed, RetryAfter)
        assert shed.reason == "admission"
        assert shed.tenant == "t"
        assert shed.retry_after_us > 0.0
        assert ac.shed_by_reason == {"admission": 1}

    def test_backpressure_shed(self):
        ac = AdmissionController(
            rate_per_s=1000.0,
            burst=8.0,
            max_backlog=4,
            backlog_fn=lambda: 10,
        )
        ac.admit_tenant("t")
        shed = ac.try_admit("t", 0.0)
        assert isinstance(shed, RetryAfter)
        assert shed.reason == "backpressure"
        # horizon covers draining the excess at the token rate
        assert shed.retry_after_us == pytest.approx(7 / 1000.0 * 1e6)

    def test_capacity_shed(self):
        ac = AdmissionController(max_tenants=1)
        assert ac.admit_tenant("a") is None
        shed = ac.admit_tenant("b")
        assert isinstance(shed, RetryAfter)
        assert shed.reason == "capacity"
        # re-admitting a registered tenant is idempotent, not capacity
        assert ac.admit_tenant("a") is None

    def test_counters(self):
        ac = AdmissionController(rate_per_s=1000.0, burst=1.0)
        ac.admit_tenant("t")
        ac.try_admit("t", 0.0)
        ac.try_admit("t", 0.0)
        assert ac.admitted == 1
        assert ac.shed == 1
        stats = ac.stats_dict()
        assert stats["admitted"] == 1.0
        assert stats["shed.admission"] == 1.0


# ---------------------------------------------------------------------------
# batch scheduler
# ---------------------------------------------------------------------------


class TestBatchScheduler:
    def test_one_batch_per_manager_node(self):
        _system, serving = build_serving()
        admit_fleet(serving, 2, working_set_pages=8, quota_frames=16)
        a = serving.sessions["tenant-0"]
        b = serving.sessions["tenant-1"]
        page = a.segment.page_size
        for i in range(4):
            assert serving.submit(a, i * page, False) is None
            assert serving.submit(b, i * page, True) is None
        assert serving.scheduler.backlog == 8
        serviced = serving.flush()
        assert serviced == 8
        assert serving.scheduler.backlog == 0
        # two tenants on two home nodes: exactly two batches
        assert serving.scheduler.batches_flushed == 2

    def test_batched_refill_uses_typed_kernel_entry(self):
        from repro.core.api import BatchMigratePagesRequest

        system, serving = build_serving()
        admit_fleet(serving, 1, working_set_pages=8, quota_frames=16)
        session = serving.sessions["tenant-0"]
        kernel = system.kernel
        typed_batches = []
        original = kernel.migrate_pages_batch

        def spy(requests):
            if isinstance(requests, BatchMigratePagesRequest):
                typed_batches.append(requests.n_requests)
            return original(requests)

        kernel.migrate_pages_batch = spy
        try:
            page = session.segment.page_size
            for i in range(6):
                serving.submit(session, i * page, False)
            serving.flush()
        finally:
            kernel.migrate_pages_batch = original
        assert session.serviced == 6
        # the whole flush pre-refilled through typed batched entries
        # (one per shard touched), never per-fault refill churn
        assert typed_batches
        assert sum(typed_batches) >= 1

    def test_tenant_attribution_books_per_tenant_faults(self):
        system, serving = build_serving()
        admit_fleet(serving, 2, working_set_pages=8, quota_frames=16)
        a = serving.sessions["tenant-0"]
        page = a.segment.page_size
        for i in range(3):
            serving.submit(a, i * page, False)
        serving.flush()
        stats = system.kernel.stats
        assert stats.tenant_faults.get("tenant-0", 0) == 3
        assert stats.tenant_fault_us["tenant-0"] > 0.0
        assert "tenant-1" not in stats.tenant_faults

    def test_latency_includes_queue_wait(self):
        _system, serving = build_serving()
        admit_fleet(serving, 1, working_set_pages=8, quota_frames=16)
        session = serving.sessions["tenant-0"]
        serving.submit(session, 0, False)
        # advance the engine 500 us before the flush happens
        serving.engine.schedule(500.0, serving.flush)
        serving.engine.run()
        assert session.latency.count == 1
        assert session.latency.percentile(50) >= 500.0


# ---------------------------------------------------------------------------
# the typed AdmitTenant entry
# ---------------------------------------------------------------------------


class TestAdmit:
    def test_admit_creates_manager_segment_and_quota(self):
        system, serving = build_serving()
        result = serving.admit(
            AdmitTenantRequest(
                "alpha",
                working_set_pages=8,
                quota=TenantQuota("alpha", frames=12),
            )
        )
        assert result.admitted
        assert result.tenant == "alpha"
        assert result.home_node == 0
        session = serving.sessions["alpha"]
        assert session.manager.name == "alpha"
        assert session.segment.n_pages == 8
        assert system.spcm.arbiter.quota_of(session.account) == 12
        # payload round-trips through the wire form
        from repro.core.api import AdmitTenantResult

        assert AdmitTenantResult.from_payload(result.to_payload()) == result

    def test_home_nodes_round_robin(self):
        _system, serving = build_serving()
        admit_fleet(serving, 4, working_set_pages=4)
        nodes = [
            serving.sessions[f"tenant-{i}"].home_node for i in range(4)
        ]
        assert nodes == [0, 1, 0, 1]

    def test_duplicate_admission_raises(self):
        _system, serving = build_serving()
        serving.admit(AdmitTenantRequest("dup"))
        with pytest.raises(ValueError):
            serving.admit(AdmitTenantRequest("dup"))

    def test_capacity_shed_result(self):
        _system, serving = build_serving(max_tenants=1)
        assert serving.admit(AdmitTenantRequest("a")).admitted
        result = serving.admit(AdmitTenantRequest("b"))
        assert not result.admitted
        assert result.retry_after is not None
        assert result.retry_after.reason == "capacity"
        assert "b" not in serving.sessions


# ---------------------------------------------------------------------------
# quotas: defer, never refuse
# ---------------------------------------------------------------------------


class TestQuotaEnforcement:
    def test_over_quota_tenant_thrashes_but_completes(self):
        system, serving = build_serving()
        # working set twice the quota: every steady-state fault needs a
        # self-recycle, never an outright refusal
        admit_fleet(serving, 2, working_set_pages=16, quota_frames=8)
        serviced = run_load(serving, duration_us=10_000.0)
        assert serviced > 0
        assert system.spcm.quota_deferrals > 0
        for tenant in ("tenant-0", "tenant-1"):
            session = serving.sessions[tenant]
            assert session.serviced > 0, "quota starved a tenant outright"
            assert system.spcm.held_by(session.account) <= 8
        InvariantChecker(system.kernel).check_all()

    def test_every_shed_carries_retry_after(self):
        _system, serving = build_serving(rate_per_s=2_000.0, burst=1.0)
        admit_fleet(serving, 2, working_set_pages=8, quota_frames=8)
        run_load(serving, duration_us=10_000.0)
        total_shed = 0
        for session in serving.sessions.values():
            total_shed += session.shed
            if session.shed:
                assert isinstance(session.last_retry_after, RetryAfter)
                assert session.last_retry_after.retry_after_us >= 0.0
        # the 2k/s rate against ~5k/s offered load must actually shed
        assert total_shed > 0


# ---------------------------------------------------------------------------
# determinism + conservation under randomized interleavings
# ---------------------------------------------------------------------------


def _serve_run(
    seed: int,
    n_tenants: int,
    quota_frames: int | None,
    duration_us: float,
    chaos_seed: int | None,
):
    """One full serving run; returns (digest rows, conservation report)."""
    system = build_workload_system(n_nodes=2)
    if chaos_seed is not None:
        injector = Injector(
            ChaosPlan(
                manager_crash_rate=0.15,
                manager_hang_rate=0.1,
                frame_ecc_rate=0.01,
                seed=chaos_seed,
                target_managers=tuple(
                    f"tenant-{i}" for i in range(n_tenants)
                ),
            ),
            tracer=system.tracer,
        )
        injector.install(system)
    serving = ServingSystem(system, seed=seed, rate_per_s=8_000.0)
    admit_fleet(
        serving, n_tenants, working_set_pages=8, quota_frames=quota_frames
    )
    run_load(serving, duration_us)
    checker = InvariantChecker(system.kernel)
    checker.check_all()  # frame + dram-quota conservation, or it raises
    rows = serving.digest_rows()
    rows.extend(system.spcm.digest_rows())
    rows.extend(system.spcm.arbiter.digest_rows())
    return rows


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_tenants=st.integers(min_value=1, max_value=4),
    quota_frames=st.one_of(st.none(), st.integers(min_value=2, max_value=16)),
    duration_us=st.sampled_from([2_000.0, 5_000.0]),
    chaos_seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**16)),
)
def test_serving_interleavings_conserve_and_repeat(
    seed, n_tenants, quota_frames, duration_us, chaos_seed
):
    """Any admit/run/shed/crash interleaving: quota + frame conservation
    holds (the checker would raise), and two identical runs produce
    bit-identical serving/SPCM/arbiter digests."""
    first = _serve_run(seed, n_tenants, quota_frames, duration_us, chaos_seed)
    second = _serve_run(seed, n_tenants, quota_frames, duration_us, chaos_seed)
    assert first == second


class TestServingObservability:
    def test_telemetry_binds_serving_gauges(self):
        from repro.obs.telemetry import install_telemetry

        system, serving = build_serving()
        collector = install_telemetry(system, interval_us=500.0)
        collector.bind_serving(serving)
        admit_fleet(serving, 2, working_set_pages=8, quota_frames=8)
        run_load(serving, duration_us=5_000.0)
        sample = collector.sample_now()
        assert sample.values["serve.tenants"] == 2.0
        assert sample.values["serve.admitted"] > 0.0
        assert sample.values["tenant.tenant-0.serviced"] > 0.0
        assert sample.values["tenant.tenant-0.held_frames"] <= 8.0

    def test_slo_watchdog_judges_per_tenant_p99(self):
        from repro.obs.slo import SLOPolicy, SLOWatchdog

        system, serving = build_serving()
        admit_fleet(serving, 2, working_set_pages=8, quota_frames=8)
        # an absurdly tight objective so the excursion definitely fires,
        # but only once per tenant (edge-triggered)
        policy = SLOPolicy(tenant_p99_us=0.001, min_tenant_samples=3)
        watchdog = SLOWatchdog(system, policy).watch_serving(serving)
        run_load(serving, duration_us=5_000.0)
        fired = {
            alert.name
            for alert in watchdog.alerts
            if alert.name.startswith("tenant_p99_latency:")
        }
        assert fired == {
            "tenant_p99_latency:tenant-0",
            "tenant_p99_latency:tenant-1",
        }
        assert len(watchdog.alerts) == 2

    def test_slo_watch_serving_disabled_by_default(self):
        from repro.obs.slo import SLOWatchdog

        system, serving = build_serving()
        admit_fleet(serving, 1, working_set_pages=8)
        watchdog = SLOWatchdog(system).watch_serving(serving)
        run_load(serving, duration_us=2_000.0)
        assert watchdog.tenant_latency == {}
        assert watchdog.alerts == []


def test_named_schedules_registered():
    """The determinism gate can resolve the serving schedules by name."""
    assert "serve-smoke" in SERVING_SCHEDULES
    assert "serve-64x2" in SERVING_SCHEDULES
    from repro.verify.determinism import run_twice

    report = run_twice("serve-smoke", nodes=2)
    assert report.ok, report.render()
