"""The seeded workload fuzzer: generation validity, reproducibility,
coverage accounting, and the shrinker."""

from __future__ import annotations

import pytest

from repro.sim.rng import RandomSource
from repro.verify.fuzz import (
    _signature,
    fuzz,
    generate_schedule,
    shrink_schedule,
)
from repro.verify.schedule import ANON, Region, WorkloadSchedule

pytestmark = [pytest.mark.verify, pytest.mark.fuzz]


def _stream(seed=0):
    return RandomSource(seed).substream("fuzz")


class TestGeneration:
    def test_generated_schedules_validate(self):
        rng = _stream()
        for index in range(30):
            schedule = generate_schedule(rng, index)
            schedule.validate()  # raises on any structural violation
            assert schedule.regions[0].kind == ANON
            assert schedule.ops

    def test_same_seed_same_stream(self):
        a = [generate_schedule(_stream(9), i) for i in range(5)]
        # one fresh stream consumed sequentially must replay identically
        rng = _stream(9)
        b = [generate_schedule(rng, i) for i in range(1)]
        assert a[0].to_payload() == b[0].to_payload()

    def test_different_seeds_differ(self):
        a = generate_schedule(_stream(1), 0)
        b = generate_schedule(_stream(2), 0)
        assert a.to_payload() != b.to_payload()

    def test_signature_buckets_structural_shape(self):
        schedule = generate_schedule(_stream(), 0)
        assert _signature(schedule) == _signature(schedule)


class TestCampaign:
    def test_seeded_campaign_is_reproducible(self):
        a = fuzz(n_schedules=12, budget_s=30.0, seed=5)
        b = fuzz(n_schedules=12, budget_s=30.0, seed=5)
        assert a.schedules_run == b.schedules_run == 12
        assert a.coverage == b.coverage
        assert [f.reason for f in a.failures] == [
            f.reason for f in b.failures
        ]

    def test_small_campaign_is_green(self):
        report = fuzz(n_schedules=8, budget_s=30.0, seed=42)
        assert report.ok, report.render()
        assert report.coverage  # at least one structural bucket seen
        assert "PASS" in report.render()


class TestShrinker:
    def _failing_on(self, predicate):
        """still_fails closure counting calls, for shrinker tests."""
        calls = []

        def still_fails(schedule: WorkloadSchedule) -> bool:
            calls.append(schedule)
            return predicate(schedule)

        return still_fails, calls

    def test_shrinks_to_the_single_culprit_op(self):
        schedule = generate_schedule(_stream(3), 0)
        assert len(schedule.ops) > 3
        culprit = schedule.ops[-1]

        still_fails, _ = self._failing_on(lambda s: culprit in s.ops)
        minimized = shrink_schedule(schedule, still_fails)
        minimized.validate()
        assert minimized.ops == [culprit]

    def test_drops_trailing_unused_regions(self):
        schedule = WorkloadSchedule(
            name="trailing-regions",
            seed=0,
            nodes=None,
            manager="default",
            regions=[
                Region("used", ANON, 2),
                Region("unused-a", ANON, 2),
                Region("unused-b", ANON, 2),
            ],
            ops=[("touch", 0, 0, 1, 0), ("touch", 0, 1, 1, 1)],
        )
        schedule.validate()
        still_fails, _ = self._failing_on(lambda s: True)
        minimized = shrink_schedule(schedule, still_fails)
        assert len(minimized.regions) == 1
        assert minimized.regions[0].name == "used"

    def test_never_returns_an_empty_schedule(self):
        schedule = generate_schedule(_stream(6), 0)
        still_fails, _ = self._failing_on(lambda s: True)
        minimized = shrink_schedule(schedule, still_fails)
        minimized.validate()
        assert minimized.ops
