"""The default segment manager (the extended UCDS)."""

from __future__ import annotations

import pytest

from repro.core.flags import PageFlags
from repro.core.manager_api import InvocationMode


class TestInvocation:
    def test_runs_as_separate_process(self, system):
        assert (
            system.default_manager.invocation
            is InvocationMode.SEPARATE_PROCESS
        )

    def test_fault_cost_is_379us(self, system):
        kernel = system.kernel
        seg = kernel.create_segment(4, manager=system.default_manager)
        snap = kernel.meter.snapshot()
        kernel.reference(seg, 0, write=True)
        assert sum(kernel.meter.delta_since(snap).values()) == 379.0


class TestFilePaging:
    def make_file(self, system, data):
        seg = system.kernel.create_segment(
            0, name="file", manager=system.default_manager, auto_grow=True
        )
        system.file_server.create_file(seg, data=data)
        return seg

    def test_fill_fetches_file_data(self, system):
        data = b"filedata" * 512  # one page
        seg = self.make_file(system, data)
        assert system.uio.read(seg, 0, len(data)) == data

    def test_writeback_on_reclaim(self, system):
        seg = self.make_file(system, b"v0" * 2048)
        system.uio.write(seg, 0, b"v1" * 2048)
        system.default_manager.reclaim_one(seg, 0)
        system.default_manager.invalidate_reclaim_cache()
        assert system.default_manager.writebacks == 1
        # page back in from the server: sees the written data
        assert system.uio.read(seg, 0, 4, ) == b"v1v1"

    def test_anonymous_pages_have_no_writeback(self, system):
        kernel = system.kernel
        seg = kernel.create_segment(4, manager=system.default_manager)
        kernel.reference(seg, 0, write=True)
        system.default_manager.reclaim_one(seg, 0)
        assert system.default_manager.writebacks == 0

    def test_file_close_writes_back_dirty_pages(self, system):
        seg = self.make_file(system, b"a" * 4096)
        system.uio.write(seg, 0, b"b" * 4096)
        system.default_manager.file_closed(seg)
        assert system.default_manager.writebacks == 1
        assert system.file_server.fetch_page(seg, 0) == b"b" * 4096
        # DIRTY cleared after writeback
        assert not PageFlags.DIRTY & PageFlags(seg.pages[0].flags)

    def test_open_close_count_as_manager_calls(self, system):
        kernel = system.kernel
        seg = self.make_file(system, b"")
        calls = kernel.stats.manager_calls.get("default-manager", 0)
        system.default_manager.file_opened(seg)
        system.default_manager.file_closed(seg)
        assert kernel.stats.manager_calls["default-manager"] == calls + 2


class TestAppendAllocation:
    def test_append_alignment(self, system):
        """Appends allocate 16 KB (4-page) aligned units."""
        seg = system.kernel.create_segment(
            0, name="out", manager=system.default_manager, auto_grow=True
        )
        system.file_server.create_file(seg)
        system.uio.write(seg, 0, b"x" * 4096)
        assert sorted(seg.pages) == [0, 1, 2, 3]
        assert system.default_manager.append_allocations == 1

    def test_single_migrate_per_append_unit(self, system):
        seg = system.kernel.create_segment(
            0, name="out", manager=system.default_manager, auto_grow=True
        )
        system.file_server.create_file(seg)
        migrates = system.kernel.stats.migrate_calls_by_manager.get(
            "default-manager", 0
        )
        system.uio.write(seg, 0, b"x" * 4096)
        assert (
            system.kernel.stats.migrate_calls_by_manager["default-manager"]
            == migrates + 1
        )

    def test_overwrite_below_eof_is_not_an_append(self, system):
        seg = system.kernel.create_segment(
            0, name="out", manager=system.default_manager, auto_grow=True
        )
        system.file_server.create_file(seg, data=b"z" * (8 * 4096))
        appends = system.default_manager.append_allocations
        system.uio.write(seg, 0, b"y" * 4096)
        assert system.default_manager.append_allocations == appends


class TestWorkingSetRebalance:
    def test_rebalance_reclaims_from_slack_segments(self, system):
        kernel = system.kernel
        manager = system.default_manager
        hot = kernel.create_segment(8, name="hot", manager=manager)
        cold = kernel.create_segment(8, name="cold", manager=manager)
        for page in range(8):
            kernel.reference(hot, page * 4096)
            kernel.reference(cold, page * 4096)
        manager.sampler.begin_interval([hot, cold])
        for page in range(8):  # only hot is touched this interval
            kernel.reference(hot, page * 4096)
        freed = manager.rebalance([hot, cold], frames_to_free=4)
        assert freed == 4
        assert cold.resident_pages < 8
        assert hot.resident_pages == 8
