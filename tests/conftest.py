"""Shared fixtures and hypothesis profiles.

Two hypothesis profiles are registered so property tests behave the same
on every machine:

* ``default`` --- hypothesis defaults, for local exploration;
* ``ci`` --- derandomized (fixed seed, no shared example database) with
  the deadline disabled, so CI runs are reproducible and immune to
  runner-speed flakiness.  Selected automatically when ``CI`` is set, or
  explicitly with ``--hypothesis-profile=ci``.
"""

from __future__ import annotations

import os

import pytest

from repro import build_system
from repro.hw.phys_mem import PhysicalMemory

try:
    from hypothesis import settings

    settings.register_profile("default", settings())
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        max_examples=50,
        database=None,
        print_blob=True,
    )
    settings.load_profile("ci" if os.environ.get("CI") else "default")
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass


@pytest.fixture
def memory() -> PhysicalMemory:
    """A small 4 MB machine (1024 frames of 4 KB)."""
    return PhysicalMemory(4 * 1024 * 1024)


@pytest.fixture
def system():
    """A booted 8 MB V++ system with SPCM and default manager."""
    return build_system(memory_mb=8, manager_frames=128)


@pytest.fixture
def kernel(system):
    return system.kernel
