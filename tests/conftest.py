"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro import build_system
from repro.hw.phys_mem import PhysicalMemory


@pytest.fixture
def memory() -> PhysicalMemory:
    """A small 4 MB machine (1024 frames of 4 KB)."""
    return PhysicalMemory(4 * 1024 * 1024)


@pytest.fixture
def system():
    """A booted 8 MB V++ system with SPCM and default manager."""
    return build_system(memory_mb=8, manager_frames=128)


@pytest.fixture
def kernel(system):
    return system.kernel
