"""The hierarchical lock manager."""

from __future__ import annotations

import pytest

from repro.dbms.locking import (
    LockManager,
    LockMode,
    Transaction,
    combine,
    compatible,
)
from repro.errors import LockProtocolError
from repro.sim.engine import Engine
from repro.sim.process import Delay


@pytest.fixture
def world():
    engine = Engine()
    return engine, LockManager(engine)


def run_txn(engine, generator):
    return engine.spawn(generator)


class TestCompatibilityMatrix:
    def test_gray_matrix(self):
        IS, IX, S, SIX, X = (
            LockMode.IS,
            LockMode.IX,
            LockMode.S,
            LockMode.SIX,
            LockMode.X,
        )
        assert compatible(IS, IS) and compatible(IS, IX)
        assert compatible(IS, S) and compatible(IS, SIX)
        assert not compatible(IS, X)
        assert compatible(IX, IX) and not compatible(IX, S)
        assert compatible(S, S) and not compatible(S, IX)
        assert compatible(SIX, IS) and not compatible(SIX, S)
        for mode in (IS, IX, S, SIX):
            assert not compatible(X, mode)
            assert not compatible(mode, X)

    def test_combine_is_least_upper_bound(self):
        assert combine(LockMode.IS, LockMode.IX) is LockMode.IX
        assert combine(LockMode.IX, LockMode.S) is LockMode.SIX
        assert combine(LockMode.S, LockMode.S) is LockMode.S
        assert combine(LockMode.SIX, LockMode.X) is LockMode.X
        assert combine(LockMode.IS, LockMode.IS) is LockMode.IS


class TestAcquireRelease:
    def test_compatible_grants_coexist(self, world):
        engine, locks = world
        order = []

        def reader(i):
            txn = Transaction(i)
            yield from locks.acquire(txn, "r", LockMode.S)
            order.append(("granted", i, engine.now))
            yield Delay(10)
            locks.release_all(txn)

        run_txn(engine, reader(1))
        run_txn(engine, reader(2))
        engine.run()
        assert [(g, i) for g, i, _ in order] == [
            ("granted", 1),
            ("granted", 2),
        ]
        assert all(t == 0 for *_, t in order)  # no waiting

    def test_exclusive_waits_for_release(self, world):
        engine, locks = world
        events = []

        def holder():
            txn = Transaction(1)
            yield from locks.acquire(txn, "r", LockMode.S)
            yield Delay(50)
            locks.release_all(txn)

        def writer():
            txn = Transaction(2)
            yield Delay(1)
            yield from locks.acquire(txn, "r", LockMode.X)
            events.append(engine.now)
            locks.release_all(txn)

        run_txn(engine, holder())
        run_txn(engine, writer())
        engine.run()
        assert events == [50]
        assert locks.waits == 1

    def test_fifo_no_overtaking(self, world):
        """A later S request must not overtake a queued X (no starvation)."""
        engine, locks = world
        order = []

        def proc(i, mode, delay):
            txn = Transaction(i)
            yield Delay(delay)
            yield from locks.acquire(txn, "r", mode)
            order.append(i)
            yield Delay(100)
            locks.release_all(txn)

        run_txn(engine, proc(1, LockMode.S, 0))
        run_txn(engine, proc(2, LockMode.X, 1))
        run_txn(engine, proc(3, LockMode.S, 2))
        engine.run()
        assert order == [1, 2, 3]

    def test_reacquire_same_mode_is_noop(self, world):
        engine, locks = world

        def proc():
            txn = Transaction(1)
            yield from locks.acquire(txn, "r", LockMode.S)
            yield from locks.acquire(txn, "r", LockMode.S)
            locks.release_all(txn)

        p = run_txn(engine, proc())
        engine.run()
        assert p.finished
        assert locks.grants == 1

    def test_upgrade_s_to_x(self, world):
        engine, locks = world
        done = []

        def proc():
            txn = Transaction(1)
            yield from locks.acquire(txn, "r", LockMode.S)
            yield from locks.acquire(txn, "r", LockMode.X)
            done.append(txn.held["r"])
            locks.release_all(txn)

        run_txn(engine, proc())
        engine.run()
        assert done == [LockMode.X]

    def test_upgrade_waits_for_other_readers(self, world):
        engine, locks = world
        events = []

        def other_reader():
            txn = Transaction(1)
            yield from locks.acquire(txn, "r", LockMode.S)
            yield Delay(30)
            locks.release_all(txn)

        def upgrader():
            txn = Transaction(2)
            yield from locks.acquire(txn, "r", LockMode.S)
            yield Delay(1)
            yield from locks.acquire(txn, "r", LockMode.X)
            events.append(engine.now)
            locks.release_all(txn)

        run_txn(engine, other_reader())
        run_txn(engine, upgrader())
        engine.run()
        assert events == [30]

    def test_release_unheld_rejected(self, world):
        _, locks = world
        txn = Transaction(1)
        txn.held["r"] = LockMode.S  # forged
        with pytest.raises(LockProtocolError):
            locks.release_all(txn)

    def test_wait_time_accounted(self, world):
        engine, locks = world

        def holder():
            txn = Transaction(1)
            yield from locks.acquire(txn, "r", LockMode.X)
            yield Delay(40)
            locks.release_all(txn)

        blocked = Transaction(2)

        def waiter():
            yield Delay(5)
            yield from locks.acquire(blocked, "r", LockMode.X)
            locks.release_all(blocked)

        run_txn(engine, holder())
        run_txn(engine, waiter())
        engine.run()
        assert blocked.lock_waits == 1
        assert blocked.lock_wait_us == 35.0


class TestHierarchyProtocol:
    def test_child_lock_requires_parent_intention(self, world):
        engine, locks = world
        locks.declare_child("db", ("rel", "t"))

        def bad():
            txn = Transaction(1)
            yield from locks.acquire(txn, ("rel", "t"), LockMode.X)

        with pytest.raises(LockProtocolError):
            run_txn(engine, bad())
            engine.run()

    def test_correct_protocol_accepted(self, world):
        engine, locks = world
        locks.declare_child("db", ("rel", "t"))
        locks.declare_child(("rel", "t"), ("page", "t", 0))

        def good():
            txn = Transaction(1)
            yield from locks.acquire(txn, "db", LockMode.IX)
            yield from locks.acquire(txn, ("rel", "t"), LockMode.IX)
            yield from locks.acquire(txn, ("page", "t", 0), LockMode.X)
            locks.release_all(txn)

        p = run_txn(engine, good())
        engine.run()
        assert p.finished

    def test_read_locks_need_only_is(self, world):
        engine, locks = world
        locks.declare_child("db", ("rel", "t"))

        def reader():
            txn = Transaction(1)
            yield from locks.acquire(txn, "db", LockMode.IS)
            yield from locks.acquire(txn, ("rel", "t"), LockMode.S)
            locks.release_all(txn)

        p = run_txn(engine, reader())
        engine.run()
        assert p.finished

    def test_is_parent_insufficient_for_child_write(self, world):
        engine, locks = world
        locks.declare_child("db", ("rel", "t"))

        def sneaky():
            txn = Transaction(1)
            yield from locks.acquire(txn, "db", LockMode.IS)
            yield from locks.acquire(txn, ("rel", "t"), LockMode.X)

        with pytest.raises(LockProtocolError):
            run_txn(engine, sneaky())
            engine.run()

    def test_self_parent_rejected(self, world):
        _, locks = world
        with pytest.raises(LockProtocolError):
            locks.declare_child("a", "a")


class TestTheCouplingTable4DependsOn:
    def test_relation_s_blocks_every_ix_writer(self, world):
        """A join's escalated S lock on accounts blocks all DebitCredits:
        the effect that turns long joins into long DC responses."""
        engine, locks = world
        dc_grant_times = []

        def join():
            txn = Transaction(100)
            yield from locks.acquire(txn, ("rel", "accounts"), LockMode.S)
            yield Delay(1000)  # the faulting/scanning join
            locks.release_all(txn)

        def dc(i):
            txn = Transaction(i)
            yield Delay(i)  # arrive during the join
            yield from locks.acquire(txn, ("rel", "accounts"), LockMode.IX)
            dc_grant_times.append(engine.now)
            locks.release_all(txn)

        run_txn(engine, join())
        for i in range(1, 4):
            run_txn(engine, dc(i))
        engine.run()
        assert dc_grant_times == [1000.0, 1000.0, 1000.0]
