"""The application models and runners (Tables 2 and 3)."""

from __future__ import annotations

import pytest

from repro.workloads.apps import (
    diff_model,
    latex_model,
    standard_applications,
    uncompress_model,
)
from repro.workloads.runner import run_on_ultrix, run_on_vpp
from repro.workloads.traces import (
    CloseFile,
    OpenFile,
    ReadFileSeq,
    TouchRegion,
    WriteFileSeq,
)


class TestAppModels:
    def test_three_applications(self):
        apps = standard_applications()
        assert [a.name for a in apps] == ["diff", "uncompress", "latex"]

    def test_diff_trace_accounting(self):
        """The model's arithmetic: touches + appends = migrates,
        + opens/closes = manager calls (module docstring)."""
        app = diff_model()
        touches = sum(
            e.n_pages for e in app.trace if isinstance(e, TouchRegion)
        )
        appends = sum(
            -(-e.n_bytes // (16 * 1024))
            for e in app.trace
            if isinstance(e, WriteFileSeq)
        )
        opens_closes = sum(
            isinstance(e, (OpenFile, CloseFile)) for e in app.trace
        )
        assert touches + appends == app.paper_migrate_calls
        assert touches + appends + opens_closes == app.paper_manager_calls

    def test_uncompress_trace_accounting(self):
        app = uncompress_model()
        touches = sum(
            e.n_pages for e in app.trace if isinstance(e, TouchRegion)
        )
        assert touches == 67
        assert app.paper_migrate_calls == 195

    def test_input_files_cover_reads(self):
        for app in standard_applications():
            reads = {
                e.name for e in app.trace if isinstance(e, ReadFileSeq)
            }
            assert reads <= set(app.input_files)


@pytest.fixture(scope="module")
def runs():
    """Run everything once; several tests read the results."""
    out = {}
    for app in standard_applications():
        out[app.name] = (app, run_on_vpp(app), run_on_ultrix(app))
    return out


class TestTable3Counts:
    def test_manager_calls_match_paper_exactly(self, runs):
        for name, (app, vpp, _) in runs.items():
            assert vpp.manager_calls == app.paper_manager_calls, name

    def test_migrate_calls_match_paper_exactly(self, runs):
        for name, (app, vpp, _) in runs.items():
            assert vpp.migrate_calls == app.paper_migrate_calls, name

    def test_overhead_close_to_paper(self, runs):
        for name, (app, vpp, _) in runs.items():
            assert vpp.manager_overhead_ms == pytest.approx(
                app.paper_overhead_ms, rel=0.05
            ), name

    def test_overhead_fractions_match_quoted_percentages(self, runs):
        """S3.2 quotes 1.9%, 0.63%, 0.35%."""
        quoted = {"diff": 0.019, "uncompress": 0.0063, "latex": 0.0035}
        for name, (_, vpp, _) in runs.items():
            assert vpp.overhead_fraction == pytest.approx(
                quoted[name], rel=0.1
            ), name


class TestTable2Elapsed:
    def test_vpp_elapsed_within_1pct(self, runs):
        for name, (app, vpp, _) in runs.items():
            assert vpp.elapsed_s == pytest.approx(
                app.paper_elapsed_vpp_s, rel=0.01
            ), name

    def test_ultrix_elapsed_within_1pct(self, runs):
        for name, (app, _, ultrix) in runs.items():
            assert ultrix.elapsed_s == pytest.approx(
                app.paper_elapsed_ultrix_s, rel=0.01
            ), name

    def test_relative_ordering_matches_paper(self, runs):
        """diff: V++ faster; uncompress and latex: Ultrix faster."""
        assert runs["diff"][1].elapsed_s < runs["diff"][2].elapsed_s
        assert runs["uncompress"][1].elapsed_s > runs["uncompress"][2].elapsed_s
        assert runs["latex"][1].elapsed_s > runs["latex"][2].elapsed_s


class TestRunnerMechanics:
    def test_vm_cost_is_separate_from_cpu(self, runs):
        for _, (app, vpp, ultrix) in runs.items():
            assert vpp.vm_us > 0 and vpp.cpu_us > 0
            assert vpp.elapsed_s == (vpp.cpu_us + vpp.vm_us) / 1e6

    def test_ultrix_faults_counted(self, runs):
        app, _, ultrix = runs["diff"]
        touches = sum(
            e.n_pages for e in app.trace if isinstance(e, TouchRegion)
        )
        assert ultrix.faults == touches

    def test_category_breakdown_exposed(self, runs):
        _, vpp, ultrix = runs["diff"]
        assert "migrate_pages" in vpp.by_category
        assert "zero_fill" in ultrix.by_category
