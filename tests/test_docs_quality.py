"""Documentation contract: every public item carries a docstring."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_FUNCTION_PREFIXES = ("_",)


def walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return [importlib.import_module(name) for name in sorted(names)]


MODULES = walk_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at home
        if inspect.isclass(obj):
            if not obj.__doc__:
                undocumented.append(f"class {name}")
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not callable(meth) or isinstance(meth, property):
                    continue
                func = inspect.unwrap(meth) if callable(meth) else meth
                if not inspect.isfunction(func):
                    continue
                doc = func.__doc__
                if not doc:
                    # an override inherits its contract's docstring
                    doc = next(
                        (
                            getattr(base, meth_name).__doc__
                            for base in obj.__mro__[1:]
                            if hasattr(base, meth_name)
                            and getattr(base, meth_name).__doc__
                        ),
                        None,
                    )
                if not doc:
                    undocumented.append(f"{name}.{meth_name}")
        elif inspect.isfunction(obj):
            if not obj.__doc__:
                undocumented.append(f"def {name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: "
        f"{', '.join(undocumented)}"
    )
