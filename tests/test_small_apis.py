"""Small public APIs not covered elsewhere."""

from __future__ import annotations

from repro.dbms.locking import LockMode, Transaction
from repro.managers.base import GenericSegmentManager
from repro.managers.discard_manager import DiscardableSegmentManager
from repro.workloads.apps import diff_model
from repro.workloads.runner import run_on_vpp


class TestTransactionHoldsAtLeast:
    def test_strength_comparison(self):
        txn = Transaction(1)
        txn.held["r"] = LockMode.SIX
        assert txn.holds_at_least("r", LockMode.S)
        assert txn.holds_at_least("r", LockMode.IX)
        assert txn.holds_at_least("r", LockMode.SIX)
        assert not txn.holds_at_least("r", LockMode.X)
        assert not txn.holds_at_least("missing", LockMode.IS)


class TestIsDiscardable:
    def test_marks_reflected(self, system):
        manager = DiscardableSegmentManager(
            system.kernel, system.spcm, initial_frames=8
        )
        seg = system.kernel.create_segment(4, manager=manager)
        assert not manager.is_discardable(seg, 0)
        manager.mark_discardable(seg, 0, 2)
        assert manager.is_discardable(seg, 0)
        assert manager.is_discardable(seg, 1)
        assert not manager.is_discardable(seg, 2)
        manager.mark_live(seg, 0)
        assert not manager.is_discardable(seg, 0)


class TestResidentPagesOf:
    def test_lists_backed_pages_sorted(self, system):
        manager = GenericSegmentManager(
            system.kernel, system.spcm, "listing", initial_frames=16
        )
        seg = system.kernel.create_segment(8, manager=manager)
        for page in (5, 1, 3):
            system.kernel.reference(seg, page * 4096)
        assert manager.resident_pages_of(seg) == [1, 3, 5]


class TestRunResultProperties:
    def test_vm_ms_consistent_with_vm_us(self):
        result = run_on_vpp(diff_model())
        assert result.vm_ms == result.vm_us / 1000.0
        assert result.vm_ms > 0
