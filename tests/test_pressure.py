"""Behavior under real memory pressure (paging happens mid-run)."""

from __future__ import annotations

import pytest

from repro.core.kernel import Kernel
from repro.core.uio import UIO, FileServer
from repro.hw.costs import DECSTATION_5000_200
from repro.hw.disk import Disk
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.default_manager import DefaultSegmentManager
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import SystemPageCacheManager


def small_world(frames: int = 64):
    """A machine too small for the workloads below."""
    memory = PhysicalMemory(frames * 4096)
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel, policy=ReservePolicy(0))
    disk = Disk(DECSTATION_5000_200)
    file_server = FileServer(kernel, disk)
    manager = DefaultSegmentManager(
        kernel, spcm, file_server, initial_frames=frames // 2
    )
    return kernel, spcm, file_server, UIO(kernel, file_server), manager


class TestPagingUnderPressure:
    def test_sequential_scan_larger_than_memory(self):
        """A 128-page file scanned on a 64-frame machine: the clock must
        recycle frames, and the data must still read correctly."""
        kernel, _, file_server, uio, manager = small_world(64)
        seg = kernel.create_segment(
            0, name="big", manager=manager, auto_grow=True
        )
        data = bytes(i % 256 for i in range(128 * 4096))
        file_server.create_file(seg, data=data)
        got = uio.read(seg, 0, len(data))
        assert got == data
        assert manager.pages_reclaimed > 0
        kernel.check_frame_conservation()

    def test_rescan_rereads_evicted_pages_from_server(self):
        kernel, _, file_server, uio, manager = small_world(64)
        seg = kernel.create_segment(
            0, name="big", manager=manager, auto_grow=True
        )
        data = bytes((i * 7) % 256 for i in range(128 * 4096))
        file_server.create_file(seg, data=data)
        uio.read(seg, 0, len(data))
        # second scan: early pages were evicted and come back intact
        assert uio.read(seg, 0, 16 * 4096) == data[: 16 * 4096]

    def test_dirty_data_survives_eviction_cycles(self):
        kernel, _, file_server, uio, manager = small_world(64)
        seg = kernel.create_segment(
            0, name="log", manager=manager, auto_grow=True
        )
        file_server.create_file(seg)
        payload = bytes(range(256)) * 16  # one page
        n_pages = 96  # 1.5x physical memory
        for page in range(n_pages):
            uio.write(seg, page * 4096, payload)
        for page in range(0, n_pages, 7):
            assert uio.read(seg, page * 4096, 4096) == payload, page
        assert manager.writebacks > 0
        kernel.check_frame_conservation()

    def test_anonymous_pressure_uses_migrate_back(self):
        """Anonymous (no backing store) pages evicted under pressure are
        recoverable through the migrate-back fast path while their frames
        remain unreused."""
        kernel, _, _, _, manager = small_world(64)
        seg = kernel.create_segment(40, name="heap", manager=manager)
        for page in range(40):
            frame = kernel.reference(seg, page * 4096, write=True)
            frame.write(bytes([page]))
        manager.reclaim_pages(8)
        evicted = [p for p in range(40) if p not in seg.pages]
        assert evicted
        for page in evicted:
            frame = kernel.reference(seg, page * 4096)
            assert frame.read(0, 1) == bytes([page])
        assert manager.fast_reclaims == len(evicted)

    def test_pressure_does_not_starve_pinned_pages(self):
        kernel, _, file_server, uio, manager = small_world(64)
        pinned_seg = kernel.create_segment(8, name="pinned", manager=manager)
        for page in range(8):
            kernel.reference(pinned_seg, page * 4096)
        manager.pin_segment(pinned_seg)
        big = kernel.create_segment(0, name="big", manager=manager, auto_grow=True)
        file_server.create_file(big, data=b"x" * (96 * 4096))
        uio.read(big, 0, 96 * 4096)
        assert pinned_seg.resident_pages == 8
        kernel.check_frame_conservation()
