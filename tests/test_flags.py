"""Page flag definitions."""

from __future__ import annotations

from repro.core.flags import MANAGER_SETTABLE, PageFlags, describe_flags


class TestPageFlags:
    def test_rw_helpers(self):
        assert PageFlags.rw() == PageFlags.READ | PageFlags.WRITE
        assert PageFlags.ro() == PageFlags.READ

    def test_describe(self):
        assert describe_flags(PageFlags.NONE) == "NONE"
        text = describe_flags(PageFlags.READ | PageFlags.DIRTY)
        assert "READ" in text and "DIRTY" in text
        assert "WRITE" not in text

    def test_describe_accepts_raw_int(self):
        assert describe_flags(int(PageFlags.READ)) == "READ"

    def test_dirty_and_referenced_are_manager_settable(self):
        # exposing these is one of the paper's extensions over mprotect
        assert PageFlags.DIRTY in MANAGER_SETTABLE
        assert PageFlags.REFERENCED in MANAGER_SETTABLE
        assert PageFlags.PINNED in MANAGER_SETTABLE

    def test_flags_are_disjoint_bits(self):
        values = [f.value for f in PageFlags if f != PageFlags.NONE]
        assert len(set(values)) == len(values)
        for a in values:
            for b in values:
                if a != b:
                    assert a & b == 0
