"""The Table-4 transaction-processing simulation."""

from __future__ import annotations

import pytest

from repro.dbms.buffer import SegmentBackedIndex
from repro.dbms.relations import Database, Relation, bank_database
from repro.dbms.simulator import (
    IndexPolicy,
    TPConfig,
    run_tp_experiment,
    table4_configurations,
)
from repro.errors import DBMSError


class TestRelations:
    def test_geometry(self):
        rel = Relation("r", n_records=100, record_size=100, page_size=4096)
        assert rel.records_per_page == 40
        assert rel.n_pages == 3
        assert rel.page_of(0) == 0
        assert rel.page_of(41) == 1
        with pytest.raises(DBMSError):
            rel.page_of(100)

    def test_validation(self):
        with pytest.raises(DBMSError):
            Relation("r", n_records=0)
        with pytest.raises(DBMSError):
            Relation("r", n_records=1, record_size=8192)

    def test_database(self):
        db = Database()
        rel = db.add(Relation("a", 10))
        assert db.relation("a") is rel
        with pytest.raises(DBMSError):
            db.add(Relation("a", 10))
        with pytest.raises(DBMSError):
            db.relation("missing")

    def test_bank_database_is_about_120mb(self):
        db = bank_database(120)
        assert set(db.relations) == {
            "accounts",
            "tellers",
            "branches",
            "history",
            "summary",
        }
        assert 100 * 1024 * 1024 < db.size_bytes < 130 * 1024 * 1024


class TestSegmentBackedIndex:
    def test_starts_fully_resident(self):
        index = SegmentBackedIndex(n_pages=16)
        assert index.fully_resident
        assert index.n_resident == 16
        assert index.missing_pages() == []

    def test_evict_all_and_fault_back(self):
        index = SegmentBackedIndex(n_pages=16)
        assert index.evict_all() == 16
        assert index.n_resident == 0
        index.fault_in(3)
        assert index.resident(3)
        assert index.faults_served == 1
        assert len(index.missing_pages()) == 15

    def test_evicted_frames_are_not_migrate_back_recoverable(self):
        index = SegmentBackedIndex(n_pages=8)
        index.evict_all()
        index.fault_in(0)
        assert index.manager.fast_reclaims == 0

    def test_discard_and_regenerate(self):
        index = SegmentBackedIndex(n_pages=16)
        assert index.discard() == 16
        assert index.n_resident == 0
        index.regenerate()
        assert index.fully_resident
        assert index.discards == 1
        assert index.regenerations == 2  # construction + explicit

    def test_frame_conservation_through_cycles(self):
        index = SegmentBackedIndex(n_pages=8)
        for _ in range(3):
            index.evict_all()
            for page in index.missing_pages():
                index.fault_in(page)
        index.kernel.check_frame_conservation()


def quick_config(policy: IndexPolicy, **kwargs) -> TPConfig:
    defaults = dict(duration_s=20.0, warmup_s=2.0, seed=11)
    defaults.update(kwargs)
    return TPConfig(policy=policy, **defaults)


class TestSimulator:
    def test_all_spawned_transactions_complete(self):
        result = run_tp_experiment(quick_config(IndexPolicy.IN_MEMORY))
        assert result.n_completed > 0
        assert result.n_measured <= result.n_completed
        assert result.avg_response_ms > 0

    def test_throughput_is_about_40_tps(self):
        result = run_tp_experiment(quick_config(IndexPolicy.IN_MEMORY))
        assert 30 <= result.n_completed / 20.0 <= 50

    def test_mix_is_95_5(self):
        result = run_tp_experiment(
            quick_config(IndexPolicy.IN_MEMORY, duration_s=60.0)
        )
        # joins measured separately
        join_fraction = result.config.join_fraction
        total = result.n_measured
        joins = total - int(total * (1 - join_fraction))  # rough
        assert result.avg_join_ms > result.avg_dc_ms

    def test_no_index_config_runs_without_index(self):
        result = run_tp_experiment(quick_config(IndexPolicy.NONE))
        assert result.index_faults == 0
        assert result.regenerations == 0

    def test_paging_config_faults_the_index(self):
        result = run_tp_experiment(quick_config(IndexPolicy.PAGING))
        assert result.index_faults > 0

    def test_regenerate_config_rebuilds(self):
        result = run_tp_experiment(quick_config(IndexPolicy.REGENERATE))
        assert result.regenerations > 0
        assert result.index_faults == 0

    def test_deterministic_given_seed(self):
        a = run_tp_experiment(quick_config(IndexPolicy.PAGING))
        b = run_tp_experiment(quick_config(IndexPolicy.PAGING))
        assert a.avg_response_ms == b.avg_response_ms
        assert a.worst_response_ms == b.worst_response_ms

    def test_lock_waits_happen(self):
        result = run_tp_experiment(quick_config(IndexPolicy.NONE))
        assert result.lock_waits > 0


class TestTable4Shape:
    """The paper's ordering and rough factors, on short runs."""

    @pytest.fixture(scope="class")
    def results(self):
        configs = table4_configurations(duration_s=40.0, seed=1992)
        return {
            r.config.policy: r
            for r in (run_tp_experiment(c) for c in configs)
        }

    def test_index_in_memory_wins(self, results):
        best = results[IndexPolicy.IN_MEMORY].avg_response_ms
        for policy in (IndexPolicy.NONE, IndexPolicy.PAGING):
            assert results[policy].avg_response_ms > 5 * best

    def test_paging_erases_most_of_the_index_benefit(self, results):
        """'indices ... are of limited benefit if ... there is a modest
        amount of paging.'"""
        paging = results[IndexPolicy.PAGING].avg_response_ms
        memory = results[IndexPolicy.IN_MEMORY].avg_response_ms
        none = results[IndexPolicy.NONE].avg_response_ms
        assert paging > 4 * memory
        assert paging > none / 4

    def test_regeneration_is_order_of_magnitude_below_paging(self, results):
        regen = results[IndexPolicy.REGENERATE].avg_response_ms
        paging = results[IndexPolicy.PAGING].avg_response_ms
        assert paging > 5 * regen

    def test_regeneration_close_to_in_memory(self, results):
        """Paper: regeneration only 27% worse than index-in-memory."""
        regen = results[IndexPolicy.REGENERATE].avg_response_ms
        memory = results[IndexPolicy.IN_MEMORY].avg_response_ms
        assert regen < 2.0 * memory

    def test_worst_cases_order(self, results):
        assert (
            results[IndexPolicy.IN_MEMORY].worst_response_ms
            < results[IndexPolicy.REGENERATE].worst_response_ms
            < results[IndexPolicy.PAGING].worst_response_ms
        )
