"""The sweep utilities."""

from __future__ import annotations

from repro.analysis.sweeps import (
    SweepPoint,
    render_series,
    sweep_arrival_rate,
)
from repro.dbms.transactions import IndexPolicy


class TestSweeps:
    def test_arrival_sweep_shape(self):
        points = sweep_arrival_rate(
            IndexPolicy.IN_MEMORY, (10.0, 30.0), duration_s=10.0
        )
        assert [p.x for p in points] == [10.0, 30.0]
        assert all(p.avg_response_ms > 0 for p in points)
        assert points[0].cpu_utilization < points[1].cpu_utilization

    def test_points_are_deterministic(self):
        a = sweep_arrival_rate(IndexPolicy.IN_MEMORY, (20.0,), duration_s=10.0)
        b = sweep_arrival_rate(IndexPolicy.IN_MEMORY, (20.0,), duration_s=10.0)
        assert a == b


class TestRenderSeries:
    def test_renders_bars(self):
        points = [
            SweepPoint(10.0, 50.0, 100.0, 0.1),
            SweepPoint(20.0, 100.0, 300.0, 0.2),
        ]
        text = render_series("demo", points, x_label="tps")
        assert "demo" in text
        assert "tps=" in text
        lines = [l for l in text.splitlines() if "#" in l]
        assert len(lines[1].split("#")) > len(lines[0].split("#"))

    def test_empty_series(self):
        assert "(no points)" in render_series("empty", [])
