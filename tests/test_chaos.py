"""The chaos subsystem: plans, injector, degradation paths, invariants.

The degradation unit tests drive each injected failure mode through the
real kernel and assert the paper-shaped survival behavior: the fault
still resolves (via retry, redelivery, or failover to the default
manager), the degradation counters record what happened, and frame
conservation holds afterwards.  The seeded schedule tests (marked
``chaos``) run whole scenarios and are the acceptance gate:
every schedule either completes or stops with a typed ReproError, and
the invariant checker never fires.
"""

from __future__ import annotations

import os

import pytest

from repro import build_system
from repro.chaos import (
    ChaosPlan,
    Injector,
    InvariantChecker,
    IPCFailureMode,
    ManagerFailureMode,
    NULL_INJECTOR,
    SCENARIOS,
    run_schedule,
    run_seed_matrix,
)
from repro.chaos.cli import main as chaos_main
from repro.core.kernel import (
    FAILOVER_AFTER_ATTEMPTS,
    IPC_MAX_REDELIVERIES,
    Kernel,
)
from repro.errors import (
    ChaosError,
    InvariantViolationError,
    TransientDiskError,
    UIOError,
    UnresolvedFaultError,
)
from repro.managers.base import GenericSegmentManager
from repro.managers.default_manager import DefaultSegmentManager
from repro.sim.engine import Engine
from repro.sim.process import Delay
from repro.spcm.spcm import SystemPageCacheManager

VICTIM = "victim-ucds"


def install_plan(system, **rates) -> Injector:
    """Install an injector targeting only the victim manager."""
    plan = ChaosPlan(target_managers=(VICTIM,), **rates)
    injector = Injector(plan)
    injector.install(system)
    return injector


def make_victim(system) -> DefaultSegmentManager:
    return DefaultSegmentManager(
        system.kernel,
        system.spcm,
        system.file_server,
        initial_frames=8,
        name=VICTIM,
    )


@pytest.fixture
def victim_file(system):
    """A cached file managed by a crash-target manager, plus the space
    that binds it; the injector is NOT yet installed."""
    kernel = system.kernel
    victim = make_victim(system)
    file_seg = kernel.create_segment(
        0, name="vf", manager=victim, auto_grow=True
    )
    system.file_server.create_file(file_seg, data=b"data" * 2048)
    space = kernel.create_segment(8, name="vs")
    space.bind(0, 2, file_seg, 0)
    return system, victim, file_seg, space


# ---------------------------------------------------------------------------
# plan validation
# ---------------------------------------------------------------------------


class TestChaosPlan:
    def test_default_plan_is_valid(self):
        ChaosPlan().validate()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("disk_error_rate", -0.1),
            ("disk_error_rate", 1.5),
            ("frame_ecc_rate", 2.0),
            ("manager_crash_rate", -1.0),
            ("ipc_drop_rate", 1.01),
        ],
    )
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(ChaosError):
            ChaosPlan(**{field: value}).validate()

    def test_manager_modes_share_one_draw(self):
        with pytest.raises(ChaosError):
            ChaosPlan(
                manager_crash_rate=0.5,
                manager_hang_rate=0.4,
                manager_byzantine_rate=0.2,
            ).validate()

    def test_ipc_modes_share_one_draw(self):
        with pytest.raises(ChaosError):
            ChaosPlan(ipc_drop_rate=0.6, ipc_duplicate_rate=0.6).validate()

    def test_burst_and_slow_factor_bounds(self):
        with pytest.raises(ChaosError):
            ChaosPlan(disk_error_burst=0).validate()
        with pytest.raises(ChaosError):
            ChaosPlan(disk_slow_factor=0.5).validate()
        with pytest.raises(ChaosError):
            ChaosPlan(max_injections=-1).validate()

    def test_with_seed_reseeds_only(self):
        plan = ChaosPlan(disk_error_rate=0.2, seed=1)
        reseeded = plan.with_seed(42)
        assert reseeded.seed == 42
        assert reseeded.disk_error_rate == 0.2

    def test_injector_rejects_invalid_plan(self):
        with pytest.raises(ChaosError):
            Injector(ChaosPlan(frame_ecc_rate=7.0))


# ---------------------------------------------------------------------------
# injector determinism and scoping
# ---------------------------------------------------------------------------


def drive(injector: Injector):
    """One fixed call sequence through every choke point."""
    out = []
    for i in range(50):
        try:
            out.append(("disk", injector.disk_io("read", i)))
        except TransientDiskError:
            out.append(("disk", "error"))
        out.append(("ecc", injector.frame_ecc(i)))
        out.append(("mgr", injector.manager_invocation("m")))
        out.append(("ipc", injector.ipc_delivery("m")))
    return out


class TestInjectorDeterminism:
    PLAN = ChaosPlan(
        seed=9,
        disk_error_rate=0.2,
        disk_slow_rate=0.2,
        frame_ecc_rate=0.2,
        manager_crash_rate=0.15,
        manager_hang_rate=0.15,
        manager_byzantine_rate=0.15,
        ipc_drop_rate=0.25,
        ipc_duplicate_rate=0.25,
    )

    def test_same_seed_same_schedule(self):
        a, b = Injector(self.PLAN), Injector(self.PLAN)
        assert drive(a) == drive(b)
        assert a.injected == b.injected  # InjectedFault is frozen/comparable
        assert a.counts() == b.counts()
        assert a.injected  # the schedule actually injected something

    def test_different_seed_different_schedule(self):
        a = Injector(self.PLAN)
        b = Injector(self.PLAN.with_seed(10))
        drive(a), drive(b)
        assert a.injected != b.injected

    def test_substreams_are_independent(self):
        """Extra draws on one choke point do not shift another's schedule."""
        a, b = Injector(self.PLAN), Injector(self.PLAN)
        for i in range(50):
            a.frame_ecc(i)
        ecc_only = [f for f in a.injected if f.kind == "frame_ecc"]
        for i in range(50):
            b.manager_invocation("m")  # interleaved foreign draws
            b.frame_ecc(i)
        assert [f.target for f in b.injected if f.kind == "frame_ecc"] == [
            f.target for f in ecc_only
        ]

    def test_target_managers_scope_injection(self):
        plan = ChaosPlan(
            manager_crash_rate=1.0, target_managers=("victim",)
        )
        injector = Injector(plan)
        assert injector.manager_invocation("bystander") is None
        assert injector.injected == []
        assert (
            injector.manager_invocation("victim")
            is ManagerFailureMode.CRASH
        )

    def test_max_injections_budget(self):
        plan = ChaosPlan(frame_ecc_rate=1.0, max_injections=2)
        injector = Injector(plan)
        hits = [injector.frame_ecc(i) for i in range(10)]
        assert hits.count(True) == 2
        assert injector.exhausted

    def test_observers_see_every_event(self):
        seen = []
        injector = Injector(ChaosPlan(frame_ecc_rate=1.0, max_injections=3))
        injector.observers.append(seen.append)
        for i in range(5):
            injector.frame_ecc(i)
        assert [f.seq for f in seen] == [1, 2, 3]


# ---------------------------------------------------------------------------
# zero overhead when disabled (Table-1 acceptance)
# ---------------------------------------------------------------------------


class TestZeroOverhead:
    def test_components_default_to_null_injector(self, system):
        assert system.injector is NULL_INJECTOR
        assert system.kernel.injector is NULL_INJECTOR
        assert system.disk.injector is NULL_INJECTOR
        assert system.memory.injector is NULL_INJECTOR
        assert NULL_INJECTOR.enabled is False

    def test_null_injector_injects_nothing(self):
        assert NULL_INJECTOR.disk_io("read", 0) == 1.0
        assert NULL_INJECTOR.frame_ecc(0) is False
        assert NULL_INJECTOR.manager_invocation("m") is None
        assert NULL_INJECTOR.ipc_delivery("m") is None

    def test_disabled_injection_keeps_exact_fault_costs(self, memory):
        kernel = Kernel(memory)
        spcm = SystemPageCacheManager(kernel)
        manager = GenericSegmentManager(kernel, spcm, "app", initial_frames=64)
        seg = kernel.create_segment(8, manager=manager)
        snap = kernel.meter.snapshot()
        kernel.reference(seg, 0, write=True)
        assert sum(kernel.meter.delta_since(snap).values()) == 107.0

    def test_zero_rate_injector_keeps_exact_fault_costs(self, system):
        """An *installed* injector whose rates are all zero draws nothing
        and charges nothing: the Figure-2 fault still costs exactly the
        separate-process 379 us through the default manager."""
        injector = Injector(ChaosPlan(seed=5))
        injector.install(system)
        kernel = system.kernel
        seg = kernel.create_segment(
            8, name="z", manager=system.default_manager
        )
        snap = kernel.meter.snapshot()
        kernel.reference(seg, 0, write=True)
        assert sum(kernel.meter.delta_since(snap).values()) == 379.0
        assert injector.injected == []
        Injector.uninstall(system)
        assert system.kernel.injector is NULL_INJECTOR


# ---------------------------------------------------------------------------
# kernel degradation paths, one failure mode at a time
# ---------------------------------------------------------------------------


class TestManagerFailover:
    def test_crash_fails_over_to_default_manager(self, victim_file):
        system, victim, file_seg, space = victim_file
        install_plan(system, manager_crash_rate=1.0, max_injections=1)
        kernel = system.kernel
        frame = kernel.reference(space, 0, write=False)
        assert frame is not None
        assert kernel.stats.manager_crashes == 1
        assert kernel.stats.manager_failovers == 1
        assert kernel.stats.fallback_resolutions == 1
        assert victim.failed
        assert file_seg.manager is system.default_manager
        kernel.check_frame_conservation()

    def test_hang_charges_the_timeout(self, victim_file):
        system, _, _, space = victim_file
        install_plan(system, manager_hang_rate=1.0, max_injections=1)
        kernel = system.kernel
        snap = kernel.meter.snapshot()
        kernel.reference(space, 0, write=False)
        delta = kernel.meter.delta_since(snap)
        assert delta["manager_timeout"] == kernel.costs.manager_timeout_us
        assert kernel.stats.manager_timeouts == 1
        assert kernel.stats.manager_failovers == 1

    def test_byzantine_manager_loses_trust_after_retries(self, victim_file):
        system, victim, _, space = victim_file
        install_plan(system, manager_byzantine_rate=1.0)
        kernel = system.kernel
        frame = kernel.reference(space, 0, write=False)
        assert frame is not None
        # the kernel keeps re-delivering until the failover threshold
        assert kernel.stats.byzantine_replies == FAILOVER_AFTER_ATTEMPTS
        assert kernel.stats.manager_failovers == 1
        assert kernel.stats.fallback_resolutions == 1
        assert victim.failed

    def test_alloc_crash_mid_handler_fails_over(self, victim_file):
        system, victim, _, space = victim_file
        install_plan(system, manager_alloc_crash_rate=1.0, max_injections=1)
        kernel = system.kernel
        frame = kernel.reference(space, 0, write=False)
        assert frame is not None
        assert kernel.stats.manager_crashes == 1
        assert kernel.stats.fallback_resolutions == 1
        kernel.check_frame_conservation()

    def test_failover_reassigns_every_segment(self, victim_file):
        system, victim, file_seg, space = victim_file
        other = system.kernel.create_segment(4, name="other", manager=victim)
        install_plan(system, manager_crash_rate=1.0, max_injections=1)
        system.kernel.reference(space, 0, write=False)
        assert file_seg.manager is system.default_manager
        assert other.manager is system.default_manager
        assert victim.managed == set()

    def test_no_fallback_suspends_the_faulting_process(self, memory):
        """Outside build_system there is no fallback manager: an injected
        crash becomes an UnresolvedFaultError naming the suspension."""
        kernel = Kernel(memory)
        spcm = SystemPageCacheManager(kernel)
        victim = GenericSegmentManager(
            kernel, spcm, VICTIM, initial_frames=8
        )
        kernel.injector = Injector(
            ChaosPlan(manager_crash_rate=1.0, target_managers=(VICTIM,))
        )
        seg = kernel.create_segment(8, manager=victim)
        with pytest.raises(UnresolvedFaultError, match="suspending"):
            kernel.reference(seg, 0)


class TestIPCFailures:
    def test_drop_is_redelivered(self, victim_file):
        system, _, _, space = victim_file
        install_plan(system, ipc_drop_rate=1.0, max_injections=1)
        kernel = system.kernel
        frame = kernel.reference(space, 0, write=False)
        assert frame is not None
        assert kernel.stats.ipc_drops == 1
        assert kernel.stats.manager_failovers == 0

    def test_unreachable_manager_fails_over(self, victim_file):
        system, victim, _, space = victim_file
        install_plan(system, ipc_drop_rate=1.0)  # every delivery lost
        kernel = system.kernel
        frame = kernel.reference(space, 0, write=False)
        assert frame is not None
        assert kernel.stats.ipc_drops == IPC_MAX_REDELIVERIES + 1
        assert kernel.stats.manager_failovers == 1
        assert kernel.stats.fallback_resolutions == 1
        assert victim.failed

    def test_duplicate_delivery_is_idempotent(self, victim_file):
        system, victim, _, space = victim_file
        install_plan(system, ipc_duplicate_rate=1.0, max_injections=1)
        kernel = system.kernel
        frame = kernel.reference(space, 0, write=False)
        assert frame is not None
        assert kernel.stats.ipc_duplicates == 1
        assert victim.duplicate_deliveries == 1
        kernel.check_frame_conservation()


class TestDiskDegradation:
    def _file(self, system, manager):
        seg = system.kernel.create_segment(
            0, name="dd", manager=manager, auto_grow=True
        )
        system.file_server.create_file(seg, data=b"dd" * 16384)
        return seg

    def test_transient_error_retried_with_backoff(self, system):
        seg = self._file(system, system.default_manager)
        install_plan(system, disk_error_rate=1.0, max_injections=1)
        snap = system.kernel.meter.snapshot()
        data = system.uio.read(seg, 0, 4096)
        assert len(data) == 4096
        assert system.file_server.io_retries == 1
        assert system.file_server.io_errors == 1
        assert system.disk.stats.errors == 1
        delta = system.kernel.meter.delta_since(snap)
        base = system.kernel.costs.io_retry_backoff_us
        # first retry: no doubling yet, deterministic jitter in [0.5, 1.0)
        assert 0.5 * base <= delta["io_retry"] < base
        assert delta["io_retry"] == system.file_server.io_backoff_us

    def test_persistent_errors_exhaust_retries(self, system):
        from repro.core.uio import MAX_IO_RETRIES

        seg = self._file(system, system.default_manager)
        install_plan(system, disk_error_rate=1.0)
        with pytest.raises(UIOError, match="failed after"):
            system.uio.read(seg, 0, 4096)
        assert system.file_server.io_retries == MAX_IO_RETRIES
        assert system.file_server.io_errors == MAX_IO_RETRIES + 1

    def test_latency_spike_scales_service_time(self, system):
        seg = self._file(system, system.default_manager)
        baseline = system.disk.stats.busy_us
        system.uio.read(seg, 0, 4096)
        clean_cost = system.disk.stats.busy_us - baseline
        install_plan(
            system, disk_slow_rate=1.0, disk_slow_factor=8.0,
            max_injections=1,
        )
        before = system.disk.stats.busy_us
        system.uio.read(seg, 8192, 4096)
        assert system.disk.stats.busy_us - before == pytest.approx(
            8.0 * clean_cost
        )


class TestECCRetirement:
    def test_ecc_failure_retires_frame_and_refaults(self, system):
        kernel = system.kernel
        seg = kernel.create_segment(
            8, name="ecc", manager=system.default_manager
        )
        install_plan(system, frame_ecc_rate=1.0, max_injections=1)
        frame = kernel.reference(seg, 0, write=True)
        assert kernel.stats.ecc_retirements == 1
        assert len(kernel.retired_frames) == 1
        assert frame.pfn not in kernel.retired_frames
        # conservation holds with the retired frame out of service
        kernel.check_frame_conservation()
        checker = InvariantChecker(kernel)
        checker.check_all()


# ---------------------------------------------------------------------------
# sharded (NUMA) chaos: crashes stay on their node
# ---------------------------------------------------------------------------


def _free_frames_on_node(kernel, spcm, node: int) -> int:
    """Free-list entries whose frames are physically homed on ``node``."""
    count = 0
    for size, pages in spcm._free.items():
        boot = kernel.boot_segments[size]
        for page in pages:
            frame = boot.pages.get(page)
            if frame is not None and spcm.shard_of(frame.phys_addr).node == node:
                count += 1
    return count


class TestShardedChaos:
    def test_node0_crash_does_not_leak_frames_into_node1(self):
        """A manager crash on node 0 returns its frames to node 0's
        shard; node 1's free pool and holdings are untouched and both
        shards still conserve frames."""
        system = build_system(memory_mb=8, n_nodes=2, manager_frames=64)
        kernel, spcm = system.kernel, system.spcm
        victim = DefaultSegmentManager(
            kernel,
            spcm,
            system.file_server,
            initial_frames=8,
            name=VICTIM,
            home_node=0,
        )
        file_seg = kernel.create_segment(
            0, name="vf", manager=victim, auto_grow=True
        )
        system.file_server.create_file(file_seg, data=b"data" * 2048)
        space = kernel.create_segment(8, name="vs")
        space.bind(0, 2, file_seg, 0)
        shard0, shard1 = spcm.shards
        # the victim's stock is node-local thanks to the home_node hint
        assert shard0.frames_held.get(VICTIM, 0) == 8
        assert shard1.frames_held.get(VICTIM, 0) == 0
        node1_free = _free_frames_on_node(kernel, spcm, 1)
        node1_held = sum(shard1.frames_held.values())
        checker = InvariantChecker(kernel, spcm=spcm)
        checker.check_all()

        install_plan(system, manager_crash_rate=1.0, max_injections=1)
        kernel.reference(space, 0)
        assert kernel.stats.manager_crashes == 1

        # node 0 settles its own books; node 1's are bit-identical
        assert shard0.frames_held.get(VICTIM, 0) == 0
        assert shard1.frames_held.get(VICTIM, 0) == 0
        assert _free_frames_on_node(kernel, spcm, 1) == node1_free
        assert sum(shard1.frames_held.values()) == node1_held
        checker.check_all()

    @pytest.mark.chaos
    def test_seeded_crash_schedules_on_sharded_system(self):
        """Seeded schedules survive a 2-node sharded SPCM; the invariant
        checker (shard conservation included) never fires."""
        for result in run_seed_matrix("apps", range(8), n_nodes=2):
            assert result.completed or result.error_type
            assert result.checks_run > 0


# ---------------------------------------------------------------------------
# process suspension
# ---------------------------------------------------------------------------


class TestProcessSuspension:
    def test_unresolved_fault_suspends_only_the_faulting_process(self):
        engine = Engine()

        def faulty():
            yield Delay(1)
            raise UnresolvedFaultError("no manager could resolve the fault")

        log = []

        def healthy():
            yield Delay(5)
            log.append(engine.now)

        bad = engine.spawn(faulty(), name="bad")
        good = engine.spawn(healthy(), name="good")
        engine.run()
        assert bad.suspended and bad.finished
        assert isinstance(bad.failure, UnresolvedFaultError)
        assert not good.suspended and log == [5]
        assert engine.suspended_processes() == [bad]


# ---------------------------------------------------------------------------
# the invariant checker itself
# ---------------------------------------------------------------------------


class TestInvariantChecker:
    def test_clean_system_has_no_violations(self, system):
        kernel = system.kernel
        seg = kernel.create_segment(
            8, name="c", manager=system.default_manager
        )
        for page in range(4):
            kernel.reference(seg, page * seg.page_size, write=True)
        checker = InvariantChecker(kernel)
        checker.check_all()
        assert checker.violations() == []
        assert checker.checks_run == 2

    def test_lost_frame_is_caught(self, system):
        kernel = system.kernel
        seg = kernel.create_segment(
            8, name="lost", manager=system.default_manager
        )
        frame = kernel.reference(seg, 0, write=True)
        seg.pages.pop(0)  # drop the frame without retiring it
        checker = InvariantChecker(kernel)
        with pytest.raises(InvariantViolationError, match="lost"):
            checker.check_all()
        (message,) = checker.violations()
        assert f"pfn={frame.pfn}" in message

    def test_corrupt_back_pointer_is_caught(self, system):
        kernel = system.kernel
        seg = kernel.create_segment(
            8, name="bp", manager=system.default_manager
        )
        frame = kernel.reference(seg, 0, write=True)
        frame.page_index = 5
        with pytest.raises(InvariantViolationError, match="back-pointer"):
            InvariantChecker(kernel).check_all()


# ---------------------------------------------------------------------------
# seeded schedules (the acceptance gate)
# ---------------------------------------------------------------------------


def _base_seed() -> int:
    """CI shards the seed space via CHAOS_SEED (0, 1, 2, ...)."""
    return int(os.environ.get("CHAOS_SEED", "0")) * 100


@pytest.mark.chaos
class TestChaosSchedules:
    def test_unknown_scenario_is_a_typed_error(self):
        with pytest.raises(ChaosError, match="unknown scenario"):
            run_schedule("no-such-scenario")

    def test_schedules_are_deterministic(self):
        a = run_schedule("figure2-hang", seed=3)
        b = run_schedule("figure2-hang", seed=3)
        assert a.injected == b.injected
        assert a.kernel_stats == b.kernel_stats
        assert a.references == b.references
        assert a.completed == b.completed

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_every_scenario_survives_three_seeds(self, scenario):
        for result in run_seed_matrix(scenario, range(3)):
            assert result.completed or result.error_type is not None

    def test_manager_crash_matrix_100_seeds(self):
        """The ISSUE acceptance run: 100 seeded crash schedules against
        the Figure-2 workload, zero invariant violations, the default
        manager resolving at least one fault."""
        base = _base_seed()
        results = run_seed_matrix("figure2-crash", range(base, base + 100))
        assert len(results) == 100
        for result in results:
            # completes, or stops with a *typed* error; InvariantViolation
            # would have propagated out of run_seed_matrix
            assert result.completed or result.error_type is not None
            assert result.checks_run >= 1
        assert sum(r.injected.get("manager_crash", 0) for r in results) >= 1
        assert sum(r.fallback_resolutions for r in results) >= 1
        assert sum(r.failovers for r in results) >= 1

    def test_dbms_scenario_injects_disk_errors(self):
        result = run_schedule("dbms", seed=_base_seed())
        assert result.completed
        assert result.injected.get("disk_error", 0) >= 1
        assert result.references > 0


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestChaosCLI:
    def test_list_names_every_scenario(self, capsys):
        assert chaos_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_reports_invariant_clean(self, capsys):
        assert chaos_main(["figure2-crash", "--schedules", "2"]) == 0
        out = capsys.readouterr().out
        assert "all 2 schedule(s) invariant-clean" in out
        assert "seed    0" in out
