"""Property tests: COW isolation and the clock guarantee."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import ModifyPageFlagsRequest
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.base import GenericSegmentManager
from repro.managers.clock import ClockReplacer
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import SystemPageCacheManager

N_PAGES = 8


def build_world():
    kernel = Kernel(PhysicalMemory(256 * 4096))
    spcm = SystemPageCacheManager(kernel, policy=ReservePolicy(0))
    manager = GenericSegmentManager(kernel, spcm, "prop", initial_frames=64)
    return kernel, manager


@given(
    st.lists(
        st.tuples(st.integers(0, N_PAGES - 1), st.booleans()),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_cow_source_is_never_altered(accesses):
    """Invariant 3: whatever mix of reads and writes hits the shadow, the
    source segment's bytes never change."""
    kernel, manager = build_world()
    source = kernel.create_segment(N_PAGES, name="src", manager=manager)
    originals = {}
    for page in range(N_PAGES):
        kernel.reference(source, page * 4096, write=True)
        source.pages[page].write(bytes([page]) * 64)
        originals[page] = source.pages[page].read(0, 64)
    shadow = kernel.create_segment(
        N_PAGES, name="shadow", manager=manager, cow_source=source
    )
    for page, write in accesses:
        frame = kernel.reference(shadow, page * 4096, write=write)
        if write:
            frame.write(b"X" * 64)
    for page in range(N_PAGES):
        assert source.pages[page].read(0, 64) == originals[page]
    kernel.check_frame_conservation()


@given(
    st.lists(
        st.tuples(st.integers(0, N_PAGES - 1), st.booleans()),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_cow_reads_see_writes_consistently(accesses):
    """After the first write to a shadow page, reads see the private
    data; before it, they see the source."""
    kernel, manager = build_world()
    source = kernel.create_segment(N_PAGES, name="src", manager=manager)
    for page in range(N_PAGES):
        kernel.reference(source, page * 4096, write=True)
        source.pages[page].write(b"S" * 8)
    shadow = kernel.create_segment(
        N_PAGES, name="shadow", manager=manager, cow_source=source
    )
    privatized: set[int] = set()
    for page, write in accesses:
        frame = kernel.reference(shadow, page * 4096, write=write)
        if write:
            frame.write(b"P" * 8)
            privatized.add(page)
        else:
            expected = b"P" * 8 if page in privatized else b"S" * 8
            assert frame.read(0, 8) == expected


@given(
    st.sets(st.integers(0, N_PAGES - 1)),
    st.integers(1, N_PAGES),
)
@settings(max_examples=60, deadline=None)
def test_clock_never_evicts_referenced_while_unreferenced_remain(
    referenced_pages, want
):
    """Invariant 5: the clock prefers unreferenced pages strictly."""
    kernel, manager = build_world()
    clock = ClockReplacer(manager)
    seg = kernel.create_segment(N_PAGES, name="s", manager=manager)
    for page in range(N_PAGES):
        kernel.reference(seg, page * 4096)
        kernel.modify_page_flags(
            ModifyPageFlagsRequest(
                seg, page, 1, clear_flags=PageFlags.REFERENCED
            )
        )
    for page in referenced_pages:
        kernel.reference(seg, page * 4096)
    unreferenced = N_PAGES - len(referenced_pages)
    victims = clock.select_victims(min(want, max(unreferenced, 0)) or 1)
    victim_pages = {p for _, p in victims}
    if unreferenced >= len(victims):
        assert victim_pages.isdisjoint(referenced_pages)
