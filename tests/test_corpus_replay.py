"""Every recorded corpus schedule must replay green, forever.

Each ``tests/corpus/*.json`` entry is a minimized schedule that once
exposed (or guards against) a contract divergence; replaying them
through the full oracle on every run is the regression net for the
equivalence contract itself.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify.determinism import run_twice
from repro.verify.oracle import check_equivalence
from repro.verify.schedule import WorkloadSchedule

pytestmark = pytest.mark.verify

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_populated():
    assert len(ENTRIES) >= 3, "tests/corpus must ship seed schedules"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_green(path):
    schedule = WorkloadSchedule.load(str(path))
    schedule.validate()
    report = check_equivalence(schedule)
    assert report.ok, f"{path.name}:\n{report.render()}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_is_deterministic(path):
    schedule = WorkloadSchedule.load(str(path))
    report = run_twice(schedule, chaos_seed=schedule.seed % 1000)
    assert report.ok, f"{path.name}:\n{report.render()}"
