"""Join algorithms and the cost model behind the Table-4 demands."""

from __future__ import annotations

import pytest

from repro.dbms.join import (
    JoinCostModel,
    JoinRecord,
    build_join_index,
    hash_join,
    index_join,
    nested_loop_join,
)
from repro.dbms.simulator import TPConfig
from repro.dbms.transactions import IndexPolicy


def records(keys, tag=""):
    return [JoinRecord(k, f"{tag}{k}") for k in keys]


class TestJoinAlgorithms:
    def test_all_three_strategies_agree(self):
        outer = records(range(0, 30, 2), "o")
        inner = records(range(0, 30, 3), "i")
        expected = {(o.key) for o in outer} & {i.key for i in inner}
        nl = nested_loop_join(outer, inner)
        hj = hash_join(outer, inner)
        ij = index_join(outer, build_join_index(inner))
        assert {o.key for o, _ in nl} == expected
        assert sorted((o.key, i.key) for o, i in hj) == sorted(
            (o.key, i.key) for o, i in nl
        )
        assert sorted((o.key, i.key) for o, i in ij) == sorted(
            (o.key, i.key) for o, i in nl
        )

    def test_empty_inputs(self):
        assert hash_join([], records([1, 2])) == []
        assert hash_join(records([1, 2]), []) == []
        assert index_join([], build_join_index(records([1]))) == []

    def test_payloads_travel(self):
        outer = records([7], "o")
        inner = records([7], "i")
        ((o, i),) = index_join(outer, build_join_index(inner))
        assert o.payload == "o7"
        assert i.payload == "i7"

    def test_index_is_a_real_btree(self):
        index = build_join_index(records(range(1000)))
        index.check_invariants()
        assert index.height >= 2


class TestJoinCostModel:
    def test_scan_cost_is_linear_in_both_inputs(self):
        model = JoinCostModel()
        base = model.scan_join_us(1000, 1000)
        assert model.scan_join_us(2000, 1000) > base
        assert model.scan_join_us(1000, 2000) > base
        # linear, not quadratic
        assert model.scan_join_us(2000, 2000) == pytest.approx(2 * base)

    def test_index_join_scales_with_height(self):
        model = JoinCostModel()
        assert model.index_join_us(1000, 4) == pytest.approx(
            (4 / 3) * model.index_join_us(1000, 3)
        )

    def test_mips_scaling(self):
        model = JoinCostModel()
        us = model.index_build_us(30_000)
        # 30 MIPS machine: 175 instr/record -> 175/30 us per record
        assert us == pytest.approx(30_000 * 175 / 30.0)


class TestModelGroundsSimulator:
    """The fitted TPConfig demands correspond to one concrete workload."""

    N_OUTER = 18_000
    N_INNER = 65_536  # the 1 MB index at 16 bytes per entry
    HEIGHT = 3

    def test_fitted_demands_are_consistent(self):
        config = TPConfig(policy=IndexPolicy.IN_MEMORY)
        model = JoinCostModel()
        assert model.consistent_with_simulator(
            config.join_scan_compute_us,
            config.join_index_compute_us,
            config.index_regen_compute_us,
            self.N_OUTER,
            self.N_INNER,
            self.HEIGHT,
        )

    def test_each_demand_individually_close(self):
        config = TPConfig(policy=IndexPolicy.IN_MEMORY)
        model = JoinCostModel()
        assert model.scan_join_us(self.N_OUTER, self.N_INNER) == pytest.approx(
            config.join_scan_compute_us, rel=0.35
        )
        assert model.index_join_us(self.N_OUTER, self.HEIGHT) == pytest.approx(
            config.join_index_compute_us, rel=0.35
        )
        assert model.index_build_us(self.N_INNER) == pytest.approx(
            config.index_regen_compute_us, rel=0.35
        )

    def test_index_entries_fill_one_megabyte(self):
        """64 K entries at 16 bytes = the paper's 1 MB index; the real
        B+-tree agrees about the page count."""
        from repro.dbms.btree import BPlusTree

        tree = BPlusTree(order=128)
        for key in range(self.N_INNER):
            tree.insert(key, key)
        config = TPConfig(policy=IndexPolicy.IN_MEMORY)
        assert tree.estimated_pages() == config.index_pages
