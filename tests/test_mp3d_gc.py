"""The S1 motivations: MP3D space-time adaptation and the adaptive GC."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.adaptive_gc import (
    AdaptiveGCApplication,
    run_gc_workload,
)
from repro.workloads.mp3d import MP3DConfig, MP3DModel


class TestMP3DAdaptation:
    def test_particles_scale_with_memory(self):
        model = MP3DModel()
        assert model.particles_for_memory(200.0) > model.particles_for_memory(
            100.0
        )
        assert (
            model.particles_for_memory(200.0)
            == 2 * model.particles_for_memory(100.0)
        )
        with pytest.raises(WorkloadError):
            model.particles_for_memory(-1.0)

    def test_runs_needed_tradeoff(self):
        """Less memory per run => more runs for the same sample count."""
        model = MP3DModel()
        samples = 10_000_000
        assert model.runs_needed(samples, 50.0) > model.runs_needed(
            samples, 200.0
        )
        with pytest.raises(WorkloadError):
            model.runs_needed(samples, 0.0)

    def test_paper_scan_rate(self):
        """200 MB in 12 s: per-page compute is ~234 microseconds."""
        config = MP3DConfig()
        assert config.n_pages == 51200
        assert config.compute_us_per_page == pytest.approx(234.4, abs=0.1)


class TestOverlapClaim:
    def test_ample_time_for_modest_shortfalls(self):
        """The paper's claim: ample time to overlap prefetch/writeback
        when the data slightly exceeds memory."""
        model = MP3DModel()
        assert model.overlap_feasible(10.0)
        assert model.overlap_feasible(20.0)
        assert not model.overlap_feasible(200.0)

    def test_max_overlappable_is_consistent(self):
        model = MP3DModel()
        limit = model.max_overlappable_shortfall_mb()
        assert model.overlap_feasible(limit * 0.99)
        assert not model.overlap_feasible(min(200.0, limit * 1.05))

    def test_shortfall_bounds_checked(self):
        model = MP3DModel()
        with pytest.raises(WorkloadError):
            model.shortfall_io_us(-1.0)
        with pytest.raises(WorkloadError):
            model.shortfall_io_us(201.0)

    def test_prefetch_fully_hides_feasible_shortfall(self):
        model = MP3DModel()
        base = model.simulate_timestep(0.0, prefetch=False)
        prefetched = model.simulate_timestep(20.0, prefetch=True)
        demand = model.simulate_timestep(20.0, prefetch=False)
        assert prefetched == pytest.approx(base, rel=0.01)
        assert demand > base * 1.2

    def test_writeback_doubles_the_io(self):
        model = MP3DModel()
        read_only = model.simulate_timestep(
            60.0, prefetch=False, writeback=False
        )
        with_wb = model.simulate_timestep(
            60.0, prefetch=False, writeback=True
        )
        assert with_wb > read_only

    def test_infeasible_shortfall_shows_even_with_prefetch(self):
        model = MP3DModel()
        base = model.simulate_timestep(0.0, prefetch=True)
        heavy = model.simulate_timestep(
            150.0, prefetch=True, writeback=True
        )
        assert heavy > base * 1.2


class TestAdaptiveGC:
    def test_adaptive_never_pages_live_data(self):
        stats = run_gc_workload(adaptive=True)
        assert stats.paging_io_operations == 0
        assert stats.collections > 0
        assert stats.garbage_pages_discarded > 0

    def test_oblivious_thrashes(self):
        stats = run_gc_workload(adaptive=False)
        assert stats.paging_io_operations > 0

    def test_more_memory_means_fewer_collections(self):
        """'Adapt the frequency of collections to available physical
        memory' --- more memory, fewer collections."""
        small = run_gc_workload(adaptive=True, physical_frames=96)
        large = run_gc_workload(adaptive=True, physical_frames=384)
        assert large.collections < small.collections
        assert large.paging_io_operations == 0

    def test_same_allocations_both_policies(self):
        a = run_gc_workload(adaptive=True)
        b = run_gc_workload(adaptive=False)
        assert a.pages_allocated == b.pages_allocated

    def test_survivor_fraction_validation(self, system):
        from repro.managers.discard_manager import DiscardableSegmentManager

        manager = DiscardableSegmentManager(
            system.kernel, system.spcm, initial_frames=8
        )
        with pytest.raises(WorkloadError):
            AdaptiveGCApplication(
                system.kernel, manager, 64, survivor_fraction=1.0
            )

    def test_oblivious_requires_threshold(self, system):
        from repro.managers.discard_manager import DiscardableSegmentManager

        manager = DiscardableSegmentManager(
            system.kernel, system.spcm, initial_frames=32
        )
        app = AdaptiveGCApplication(
            system.kernel, manager, 64, adaptive=False
        )
        with pytest.raises(WorkloadError):
            app.allocate_pages(1)
