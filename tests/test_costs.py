"""Cost model calibration and CostMeter behavior.

The calibration identities pin the component decomposition to the paper's
Table 1; if anyone retunes a component, these tests say which published
number broke.
"""

from __future__ import annotations

import pytest

from repro.hw.costs import DECSTATION_5000_200, SGI_4D_380, CostMeter

C = DECSTATION_5000_200


class TestCalibration:
    def test_vpp_minimal_fault_faulting_process_is_107us(self):
        total = (
            C.trap_entry_exit
            + C.vpp_fault_dispatch
            + C.vpp_upcall
            + C.vpp_manager_alloc
            + C.vpp_migrate_call
            + C.vpp_resume_direct
        )
        assert total == 107.0

    def test_vpp_minimal_fault_default_manager_is_379us(self):
        total = (
            C.trap_entry_exit
            + C.vpp_fault_dispatch
            + 2 * (C.ipc_message + C.context_switch)
            + C.vpp_manager_alloc
            + C.vpp_migrate_call
            + C.vpp_kernel_resume
        )
        assert total == 379.0

    def test_ultrix_fault_is_175us(self):
        total = (
            C.trap_entry_exit
            + C.ultrix_fault_service
            + C.zero_page
            + C.map_update
        )
        assert total == 175.0

    def test_zeroing_is_the_paper_75us_delta(self):
        assert C.zero_page == 75.0

    def test_ultrix_user_level_fault_is_152us(self):
        total = (
            C.trap_entry_exit
            + C.signal_delivery
            + C.mprotect_call
            + C.sigreturn
        )
        assert total == 152.0

    def test_vpp_read_4kb_is_222us(self):
        assert C.uio_call + C.fs_lookup_vpp + C.copy_page == 222.0

    def test_vpp_write_4kb_is_203us(self):
        total = (
            C.uio_call
            + C.fs_lookup_vpp
            + C.copy_page
            - C.vpp_write_fastpath_saving
        )
        assert total == 203.0

    def test_ultrix_read_4kb_is_211us(self):
        assert C.syscall + C.fs_lookup_ultrix + C.copy_page == 211.0

    def test_ultrix_write_4kb_is_311us(self):
        total = (
            C.syscall
            + C.fs_lookup_ultrix
            + C.copy_page
            + C.ultrix_write_extra
        )
        assert total == 311.0


class TestMachineCosts:
    def test_instructions_us_uses_mips(self):
        assert C.instructions_us(25.0) == 1.0
        assert SGI_4D_380.instructions_us(30.0) == 1.0

    def test_disk_transfer_includes_latency_and_bandwidth(self):
        us = C.disk_transfer_us(4096)
        assert us == C.disk_latency_us + 4096 / C.disk_bandwidth_mb_s

    def test_sgi_machine_shape(self):
        assert SGI_4D_380.n_cpus == 8
        assert SGI_4D_380.cpu_mips == 30.0


class TestCostMeter:
    def test_charge_accumulates_by_category(self):
        meter = CostMeter()
        meter.charge("a", 10.0)
        meter.charge("a", 5.0)
        meter.charge("b", 1.0)
        assert meter.total_us == 16.0
        assert meter.by_category == {"a": 15.0, "b": 1.0}
        assert meter.count("a") == 2
        assert meter.count("missing") == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostMeter().charge("a", -1.0)

    def test_parent_propagation(self):
        parent = CostMeter()
        child = CostMeter(parent=parent)
        child.charge("x", 7.0)
        assert parent.total_us == 7.0
        assert child.total_us == 7.0

    def test_reset_clears_only_self(self):
        parent = CostMeter()
        child = CostMeter(parent=parent)
        child.charge("x", 7.0)
        child.reset()
        assert child.total_us == 0.0
        assert parent.total_us == 7.0

    def test_snapshot_delta(self):
        meter = CostMeter()
        meter.charge("a", 3.0)
        snap = meter.snapshot()
        meter.charge("a", 2.0)
        meter.charge("b", 4.0)
        assert meter.delta_since(snap) == {"a": 2.0, "b": 4.0}

    def test_unit_conversions(self):
        meter = CostMeter()
        meter.charge("a", 2_500_000.0)
        assert meter.total_ms == 2500.0
        assert meter.total_s == 2.5
