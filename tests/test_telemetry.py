"""Continuous telemetry: interval sampling, ring buffer, wiring, JSONL."""

from __future__ import annotations

import pytest

from repro import build_system
from repro.obs.export import validate_record
from repro.obs.slo import Alert
from repro.obs.telemetry import (
    TelemetryCollector,
    TelemetrySample,
    install_telemetry,
    read_jsonl,
    write_jsonl,
)
from repro.sim.engine import Engine


class TestCollectorBasics:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            TelemetryCollector(interval_us=0.0)
        with pytest.raises(ValueError):
            TelemetryCollector(capacity=0)
        with pytest.raises(ValueError):
            TelemetryCollector(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            TelemetryCollector(ewma_alpha=1.5)

    def test_duplicate_registrations_rejected(self):
        c = TelemetryCollector()
        c.gauge("a", lambda: 1.0)
        with pytest.raises(ValueError):
            c.gauge("a", lambda: 2.0)
        c.bind("p", lambda: {})
        with pytest.raises(ValueError):
            c.bind("p", lambda: {})

    def test_ewma_seeds_then_smooths(self):
        c = TelemetryCollector(ewma_alpha=0.5)
        c.observe_fault(100.0)
        assert c.fault_latency_ewma_us == 100.0  # first observation seeds
        c.observe_fault(200.0)
        assert c.fault_latency_ewma_us == pytest.approx(150.0)
        assert c.faults_observed == 2


class TestIntervalSampling:
    def _clocked(self, interval=100.0):
        now = [0.0]
        c = TelemetryCollector(clock=lambda: now[0], interval_us=interval)
        c.gauge("t", lambda: now[0])
        return c, now

    def test_first_poll_arms_without_sampling(self):
        c, now = self._clocked()
        now[0] = 50.0
        assert c.poll() is None
        assert c.samples() == []

    def test_samples_stamped_at_crossed_boundary(self):
        c, now = self._clocked(interval=100.0)
        now[0] = 50.0
        c.poll()  # arm at 100
        now[0] = 120.0
        sample = c.poll()
        assert sample is not None and sample.t_us == 100.0
        now[0] = 130.0
        assert c.poll() is None  # same interval, one sample max
        # a long quiet stretch yields ONE sample at the latest boundary
        now[0] = 555.0
        sample = c.poll()
        assert sample is not None and sample.t_us == 500.0
        assert [s.t_us for s in c.samples()] == [100.0, 500.0]

    def test_identical_runs_are_byte_identical(self):
        def run() -> list[dict]:
            c, now = self._clocked(interval=10.0)
            for step in range(40):
                now[0] = step * 7.0
                c.poll()
            return [s.to_dict() for s in c.samples()]

        assert run() == run()

    def test_ring_drops_oldest_and_counts(self):
        c = TelemetryCollector(clock=lambda: 0.0, capacity=4)
        for i in range(6):
            c._take(float(i))
        assert len(c.samples()) == 4
        assert c.dropped_samples == 2
        assert [s.t_us for s in c.samples()] == [2.0, 3.0, 4.0, 5.0]

    def test_reset_rearms(self):
        c, now = self._clocked()
        now[0] = 150.0
        c.poll()
        now[0] = 250.0
        assert c.poll() is not None
        c.reset()
        assert c.samples() == []
        now[0] = 350.0
        assert c.poll() is None  # re-armed: first poll after reset

    def test_engine_tick_hook_paces_sampling(self):
        engine = Engine()
        c = TelemetryCollector(
            clock=lambda: engine.now, interval_us=100.0
        )
        c.gauge("now", lambda: engine.now)
        c.attach_engine(engine)
        for i in range(10):
            engine.schedule_at(i * 50.0, lambda: None)
        engine.run()
        stamps = [s.t_us for s in c.samples()]
        assert stamps  # virtual time crossed boundaries
        assert all(t % 100.0 == 0.0 for t in stamps)
        assert stamps == sorted(stamps)


class TestInstalledProbes:
    @pytest.fixture
    def sampled_system(self):
        system = build_system(memory_mb=8)
        collector = install_telemetry(system, interval_us=250.0)
        kernel = system.kernel
        seg = kernel.create_segment(
            8, name="telemetry-anon", manager=system.default_manager
        )
        for page in range(8):
            kernel.reference(seg, page * seg.page_size, write=True)
        collector.sample_now()
        return system, collector

    def test_install_stores_collector_on_system(self, sampled_system):
        system, collector = sampled_system
        assert system.telemetry is collector

    def test_sample_carries_every_standard_probe(self, sampled_system):
        _, collector = sampled_system
        values = collector.samples()[-1].values
        for key in (
            "kernel.faults",
            "kernel.references",
            "kernel.cost_total_us",
            "tlb.hit_rate",
            "disk.reads",
            "disk.writes",
            "faults.latency_ewma_us",
            "faults.observed",
            "spcm.node0.free_frames",
            "spcm.node0.granted_frames",
            "spcm.node0.loaned_grants",
            "spcm.node0.retired_frames",
            "manager.default-manager.resident_pages",
            "manager.default-manager.free_frames",
            "manager.default-manager.dram_balance",
        ):
            assert key in values, key
        assert values["kernel.faults"] == 8.0
        assert values["faults.observed"] == 8.0
        assert values["faults.latency_ewma_us"] > 0.0
        assert values["manager.default-manager.resident_pages"] == 8.0

    def test_fault_pacing_emits_interval_samples(self, sampled_system):
        _, collector = sampled_system
        # every boundary-crossing fault emitted one interval sample;
        # the explicit sample_now() closes the series off-boundary
        interval_stamps = [s.t_us for s in collector.samples()[:-1]]
        assert interval_stamps
        assert all(t % 250.0 == 0.0 for t in interval_stamps)

    def test_per_node_gauges_cover_every_shard(self):
        system = build_system(memory_mb=8, n_nodes=2)
        collector = install_telemetry(system, interval_us=250.0)
        sample = collector.sample_now()
        assert "spcm.node0.free_frames" in sample.values
        assert "spcm.node1.free_frames" in sample.values


class TestTelemetryJsonl:
    def test_round_trip_with_alerts(self, tmp_path):
        c = TelemetryCollector(clock=lambda: 0.0)
        c.gauge("x", lambda: 1.5)
        s = c.sample_now()
        alert = Alert(
            name="fault_p99_latency",
            severity="warning",
            t_us=10.0,
            value=25_000.0,
            threshold=20_000.0,
            detail="p99 over budget",
        )
        path = tmp_path / "telemetry.jsonl"
        write_jsonl(c, path, alerts=[alert])
        samples, alerts = read_jsonl(str(path))
        assert len(samples) == 1
        assert samples[0].t_us == s.t_us
        assert samples[0].values == {"x": 1.5}
        assert len(alerts) == 1
        assert Alert.from_dict(alerts[0]) == alert

    def test_records_validate_against_shared_schema(self):
        sample = TelemetrySample(t_us=5.0, values={"a": 1.0})
        validate_record(sample.to_dict())
        alert = Alert("n", "critical", 1.0, 2.0, 1.5)
        validate_record(alert.to_dict())
        with pytest.raises(ValueError):
            validate_record({"type": "sample", "t_us": 1.0})  # no values

    def test_read_tolerates_span_and_event_records(self, tmp_path):
        import io

        text = (
            '{"type": "sample", "t_us": 1.0, "values": {}}\n'
            '{"type": "span", "span_id": 1, "parent_id": null,'
            ' "component": "kernel", "operation": "x",'
            ' "t_start_us": 0.0, "t_end_us": 1.0}\n'
            '{"type": "event", "step": 1, "actor": "ipc",'
            ' "action": "msg", "cost_us": 31.0}\n'
        )
        samples, alerts = read_jsonl(io.StringIO(text))
        assert len(samples) == 1 and alerts == []
        with pytest.raises(ValueError):
            read_jsonl(io.StringIO('{"type": "bogus"}\n'))
