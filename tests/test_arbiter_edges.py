"""Edge cases of the global arbiter and sharded-SPCM bookkeeping.

Backfill for the corners the sharded-SPCM suite skipped: cross-node
loan repayment after a loaned frame is retired, dram rebalancing when a
donor market is empty, and the hit-ratio denominator when nothing was
ever placement-hinted.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import build_system
from repro.chaos.invariants import InvariantChecker
from repro.core.kernel import Kernel
from repro.hw.numa import NumaTopology
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.base import GenericSegmentManager
from repro.spcm.arbiter import GlobalArbiter
from repro.spcm.market import MarketConfig, MemoryMarket
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import SystemPageCacheManager

pytestmark = pytest.mark.verify


def _sharded_system():
    return build_system(memory_mb=4, manager_frames=16, n_nodes=2)


def _node_of(system, frame) -> int:
    return system.spcm.shard_of(frame.phys_addr).node


class TestCrossNodeLoanRetirement:
    def _borrowing_manager(self, system):
        """A manager homed on node 0 whose demand overflows into node 1."""
        spcm = system.spcm
        manager = GenericSegmentManager(
            system.kernel, spcm, "borrower", initial_frames=0, home_node=0
        )
        free_on_home = spcm.free_frames_by_node()[0]
        granted = manager.request_frames(free_on_home + 16)
        assert granted == free_on_home + 16
        return manager

    def test_overflow_demand_is_booked_as_a_loan(self):
        system = _sharded_system()
        manager = self._borrowing_manager(system)
        arbiter = system.spcm.arbiter
        assert arbiter.loans.get((0, 1), 0) >= 16
        assert arbiter.loaned_to(0) >= 16
        assert system.spcm.shards[1].loaned_grants >= 16
        assert manager.free_frames > 16

    def test_loan_repayment_after_loaned_frame_retired(self):
        """Retiring a loaned frame must come off the lender shard's books
        so the later repayment closes them out exactly (never negative)."""
        system = _sharded_system()
        spcm, kernel = system.spcm, system.kernel
        manager = self._borrowing_manager(system)
        account = spcm.account_of(manager)
        shard1 = spcm.shards[1]
        held_before = shard1.frames_held[account]

        # pick one loaned (node-1) frame out of the free stock and let the
        # kernel retire it (the ECC path: leaves the segment, then the
        # SPCM takes it off the lender's books)
        slot, frame = next(
            (s, manager.free_segment.pages[s])
            for s in manager._free_slots
            if _node_of(system, manager.free_segment.pages[s]) == 1
        )
        kernel.retire_frame(frame)
        manager._free_slots.remove(slot)
        manager._drop_stale(slot)

        assert shard1.frames_held[account] == held_before - 1
        assert shard1.retired_frames == 1
        assert spcm.retired_frames == 1
        InvariantChecker(kernel).check_all()

        # repay everything (node-1 frames surrendered first); the
        # lender's ledger must land on exactly zero, not clamp from below
        total_free = len(manager._free_slots)
        returned = manager.return_frames(total_free, node=1)
        assert returned == total_free
        assert shard1.frames_held[account] == 0
        InvariantChecker(kernel).check_all()

    def test_retirement_of_free_pool_frame_charges_no_account(self):
        """A frame retired while sitting in the free pool is nobody's
        holding: shard retired count moves, no account's ledger does."""
        system = _sharded_system()
        spcm, kernel = system.spcm, system.kernel
        boot = kernel.boot_segments[kernel.memory.page_size]
        size = kernel.memory.page_size
        free_page = spcm._free[size][0]
        frame = boot.pages[free_page]
        node = _node_of(system, frame)
        held_before = dict(spcm.shards[node].frames_held)
        kernel.retire_frame(frame)
        assert spcm.shards[node].retired_frames == 1
        assert spcm.shards[node].frames_held == held_before
        InvariantChecker(kernel).check_all()


class TestRebalanceEdges:
    def _market(self, accounts: dict[str, tuple[float, float]]):
        """A market holding ``name -> (balance, holding_mb)``."""
        market = MemoryMarket(MarketConfig())
        for name, (balance, holding) in accounts.items():
            acct = market.open_account(name)
            acct.balance = balance
            acct.holding_mb = holding
        return market

    def test_zero_sum_with_empty_donor_market(self):
        """A sibling market with no accounts at all neither crashes the
        round nor absorbs drams; machine-wide drams are conserved."""
        rich = self._market({"m": (40.0, 0.0)})
        poor = self._market({"m": (0.0, 4.0)})
        empty = self._market({})
        arbiter = GlobalArbiter([rich, poor, empty])
        moved = arbiter.rebalance_drams()
        assert moved == pytest.approx(40.0)
        # all drams follow the holdings: the account holds only in `poor`
        assert rich.accounts["m"].balance == pytest.approx(0.0)
        assert poor.accounts["m"].balance == pytest.approx(40.0)
        assert not empty.accounts
        total = sum(
            m.accounts["m"].balance for m in (rich, poor)
        )
        assert total == pytest.approx(40.0)
        # transfers are balanced pairs: the siblings' transfer balances
        # cancel machine-wide
        assert sum(
            m.transfer_balance for m in (rich, poor, empty)
        ) == pytest.approx(0.0)

    def test_even_split_when_account_holds_nothing_anywhere(self):
        a = self._market({"m": (10.0, 0.0)})
        b = self._market({"m": (0.0, 0.0)})
        arbiter = GlobalArbiter([a, b])
        arbiter.rebalance_drams()
        assert a.accounts["m"].balance == pytest.approx(5.0)
        assert b.accounts["m"].balance == pytest.approx(5.0)

    def test_single_market_account_is_untouched(self):
        a = self._market({"solo": (7.0, 2.0), "m": (6.0, 0.0)})
        b = self._market({"m": (0.0, 3.0)})
        arbiter = GlobalArbiter([a, b])
        arbiter.rebalance_drams()
        assert a.accounts["solo"].balance == pytest.approx(7.0)
        assert a.accounts["m"].balance == pytest.approx(0.0)
        assert b.accounts["m"].balance == pytest.approx(6.0)

    def test_fewer_than_two_markets_is_a_no_op(self):
        a = self._market({"m": (9.0, 1.0)})
        arbiter = GlobalArbiter([a])
        assert arbiter.rebalance_drams() == 0.0
        assert arbiter.rebalance_rounds == 0


class TestLocalHitRatio:
    def test_ratio_is_one_with_zero_hinted_grants(self):
        """No hinted grants -> vacuously all-local (1.0), not 0/0."""
        system = _sharded_system()
        # the boot-time default manager has no home node, so nothing so
        # far was placement-hinted
        assert system.spcm.local_grant_pages == 0
        assert system.spcm.remote_grant_pages == 0
        assert system.spcm.local_hit_ratio() == 1.0

    def test_ratio_drops_when_demand_overflows_the_home_node(self):
        system = _sharded_system()
        manager = GenericSegmentManager(
            system.kernel, system.spcm, "hinted", initial_frames=0,
            home_node=0,
        )
        manager.request_frames(8)
        assert system.spcm.local_hit_ratio() == 1.0
        free_on_home = system.spcm.free_frames_by_node()[0]
        manager.request_frames(free_on_home + 8)
        assert 0.0 < system.spcm.local_hit_ratio() < 1.0


# -- property-based conservation across randomized interleavings -----------

#: one step of the randomized schedule: grants, repayments, retirements,
#: holdings drift, income accrual, and arbiter rebalance rounds, in any
#: order hypothesis cares to interleave them
_STEPS = st.one_of(
    st.tuples(st.just("request"), st.integers(0, 1), st.integers(1, 200)),
    st.tuples(st.just("overflow"), st.integers(0, 1)),
    st.tuples(st.just("return"), st.integers(0, 1), st.integers(1, 200)),
    st.tuples(st.just("retire"), st.just(0)),
    st.tuples(st.just("hold"), st.integers(0, 1), st.integers(0, 8)),
    st.tuples(st.just("advance"), st.integers(1, 5)),
    st.tuples(st.just("rebalance"), st.just(0)),
)


class TestConservationProperties:
    """Per-shard frame books and dram markets survive any interleaving.

    The two machine-wide conservation laws the sharded SPCM promises:

    * every shard's boot pages stay partitioned into free + held +
      retired, with cross-node demand booked on the arbiter's loan
      ledger, and
    * drams only ever *move* --- income mints them, charges burn them,
      but arbiter rebalancing is zero-sum machine-wide.
    """

    def _market_system(self):
        """A two-node system with a dram market on every shard."""
        memory = PhysicalMemory(4 * 1024 * 1024)
        topology = NumaTopology.for_memory(memory, 2)
        kernel = Kernel(memory, topology=topology)
        spcm = SystemPageCacheManager(
            kernel,
            policy=ReservePolicy(0),
            market=MemoryMarket(MarketConfig()),
        )
        managers = [
            GenericSegmentManager(
                kernel, spcm, f"m{node}", initial_frames=0, home_node=node
            )
            for node in (0, 1)
        ]
        return kernel, spcm, managers

    def _apply(self, step, kernel, spcm, managers, now):
        op = step[0]
        if op == "request":
            managers[step[1]].request_frames(step[2])
        elif op == "overflow":
            # force a cross-node loan: ask for more than the home node has
            home = managers[step[1]].home_node
            free_on_home = spcm.free_frames_by_node().get(home, 0)
            managers[step[1]].request_frames(free_on_home + 8)
        elif op == "return":
            manager = managers[step[1]]
            n = min(step[2], manager.free_frames)
            if n:
                manager.return_frames(n)
        elif op == "retire":
            size = kernel.memory.page_size
            free = spcm._free[size]
            if len(free):
                boot = kernel.boot_segments[size]
                kernel.retire_frame(boot.pages[free[0]])
        elif op == "hold":
            name = f"m{step[1]}"
            for market in spcm.markets:
                if name in market.accounts:
                    market.set_holding(name, float(step[2]))
        elif op == "advance":
            now += step[1]
            for market in spcm.markets:
                market.advance(float(now))
        elif op == "rebalance":
            total_before = sum(m.total_drams() for m in spcm.markets)
            moved = spcm.arbiter.rebalance_drams()
            assert moved >= 0.0
            total_after = sum(m.total_drams() for m in spcm.markets)
            # rebalancing moves drams between shards, never mints or
            # burns them
            assert total_after == pytest.approx(total_before)
        return now

    @given(steps=st.lists(_STEPS, min_size=1, max_size=15))
    @settings(
        max_examples=20,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_interleavings_conserve_frames_and_drams(self, steps):
        kernel, spcm, managers = self._market_system()
        checker = InvariantChecker(kernel)
        now = 0
        for step in steps:
            now = self._apply(step, kernel, spcm, managers, now)
            # the full oracle after *every* step: per-shard frame
            # conservation, per-market dram conservation, translation
            # coherence
            checker.check_all()
            # arbiter transfers cancel machine-wide (zero-sum)
            net = sum(m.transfer_balance for m in spcm.markets)
            assert net == pytest.approx(0.0, abs=1e-9)
            # the loan ledger never goes negative and always sums to the
            # brokered total
            arbiter = spcm.arbiter
            assert all(n > 0 for n in arbiter.loans.values())
            assert sum(arbiter.loans.values()) == arbiter.loans_brokered

    @given(
        balances=st.lists(
            st.floats(0.0, 100.0, allow_nan=False), min_size=2, max_size=4
        ),
        holdings=st.lists(
            st.floats(0.0, 16.0, allow_nan=False), min_size=2, max_size=4
        ),
        rounds=st.integers(1, 3),
    )
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_rebalance_is_zero_sum_for_any_market_shape(
        self, balances, holdings, rounds
    ):
        """Pure-market half: arbitrary balances and holdings, repeated
        rebalance rounds; total drams invariant, transfers cancel."""
        markets = []
        for balance in balances:
            market = MemoryMarket(MarketConfig())
            acct = market.open_account("m")
            # seed via balanced income so the account's own books stay
            # consistent (balance == income - charges - tax + transfers)
            acct.balance = balance
            acct.total_income = balance
            markets.append(market)
        for market, holding in zip(markets, holdings):
            market.set_holding("m", holding)
        arbiter = GlobalArbiter(markets)
        total_before = sum(m.total_drams() for m in markets)
        for _ in range(rounds):
            arbiter.rebalance_drams()
        assert sum(m.total_drams() for m in markets) == pytest.approx(
            total_before
        )
        assert sum(m.transfer_balance for m in markets) == pytest.approx(
            0.0, abs=1e-9
        )
        # a second round after convergence moves (almost) nothing new
        assert arbiter.rebalance_drams() == pytest.approx(0.0, abs=1e-9)
