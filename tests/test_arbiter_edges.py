"""Edge cases of the global arbiter and sharded-SPCM bookkeeping.

Backfill for the corners the sharded-SPCM suite skipped: cross-node
loan repayment after a loaned frame is retired, dram rebalancing when a
donor market is empty, and the hit-ratio denominator when nothing was
ever placement-hinted.
"""

from __future__ import annotations

import pytest

from repro import build_system
from repro.chaos.invariants import InvariantChecker
from repro.managers.base import GenericSegmentManager
from repro.spcm.arbiter import GlobalArbiter
from repro.spcm.market import MarketConfig, MemoryMarket

pytestmark = pytest.mark.verify


def _sharded_system():
    return build_system(memory_mb=4, manager_frames=16, n_nodes=2)


def _node_of(system, frame) -> int:
    return system.spcm.shard_of(frame.phys_addr).node


class TestCrossNodeLoanRetirement:
    def _borrowing_manager(self, system):
        """A manager homed on node 0 whose demand overflows into node 1."""
        spcm = system.spcm
        manager = GenericSegmentManager(
            system.kernel, spcm, "borrower", initial_frames=0, home_node=0
        )
        free_on_home = spcm.free_frames_by_node()[0]
        granted = manager.request_frames(free_on_home + 16)
        assert granted == free_on_home + 16
        return manager

    def test_overflow_demand_is_booked_as_a_loan(self):
        system = _sharded_system()
        manager = self._borrowing_manager(system)
        arbiter = system.spcm.arbiter
        assert arbiter.loans.get((0, 1), 0) >= 16
        assert arbiter.loaned_to(0) >= 16
        assert system.spcm.shards[1].loaned_grants >= 16
        assert manager.free_frames > 16

    def test_loan_repayment_after_loaned_frame_retired(self):
        """Retiring a loaned frame must come off the lender shard's books
        so the later repayment closes them out exactly (never negative)."""
        system = _sharded_system()
        spcm, kernel = system.spcm, system.kernel
        manager = self._borrowing_manager(system)
        account = spcm.account_of(manager)
        shard1 = spcm.shards[1]
        held_before = shard1.frames_held[account]

        # pick one loaned (node-1) frame out of the free stock and let the
        # kernel retire it (the ECC path: leaves the segment, then the
        # SPCM takes it off the lender's books)
        slot, frame = next(
            (s, manager.free_segment.pages[s])
            for s in manager._free_slots
            if _node_of(system, manager.free_segment.pages[s]) == 1
        )
        kernel.retire_frame(frame)
        manager._free_slots.remove(slot)
        manager._drop_stale(slot)

        assert shard1.frames_held[account] == held_before - 1
        assert shard1.retired_frames == 1
        assert spcm.retired_frames == 1
        InvariantChecker(kernel).check_all()

        # repay everything (node-1 frames surrendered first); the
        # lender's ledger must land on exactly zero, not clamp from below
        total_free = len(manager._free_slots)
        returned = manager.return_frames(total_free, node=1)
        assert returned == total_free
        assert shard1.frames_held[account] == 0
        InvariantChecker(kernel).check_all()

    def test_retirement_of_free_pool_frame_charges_no_account(self):
        """A frame retired while sitting in the free pool is nobody's
        holding: shard retired count moves, no account's ledger does."""
        system = _sharded_system()
        spcm, kernel = system.spcm, system.kernel
        boot = kernel.boot_segments[kernel.memory.page_size]
        size = kernel.memory.page_size
        free_page = spcm._free[size][0]
        frame = boot.pages[free_page]
        node = _node_of(system, frame)
        held_before = dict(spcm.shards[node].frames_held)
        kernel.retire_frame(frame)
        assert spcm.shards[node].retired_frames == 1
        assert spcm.shards[node].frames_held == held_before
        InvariantChecker(kernel).check_all()


class TestRebalanceEdges:
    def _market(self, accounts: dict[str, tuple[float, float]]):
        """A market holding ``name -> (balance, holding_mb)``."""
        market = MemoryMarket(MarketConfig())
        for name, (balance, holding) in accounts.items():
            acct = market.open_account(name)
            acct.balance = balance
            acct.holding_mb = holding
        return market

    def test_zero_sum_with_empty_donor_market(self):
        """A sibling market with no accounts at all neither crashes the
        round nor absorbs drams; machine-wide drams are conserved."""
        rich = self._market({"m": (40.0, 0.0)})
        poor = self._market({"m": (0.0, 4.0)})
        empty = self._market({})
        arbiter = GlobalArbiter([rich, poor, empty])
        moved = arbiter.rebalance_drams()
        assert moved == pytest.approx(40.0)
        # all drams follow the holdings: the account holds only in `poor`
        assert rich.accounts["m"].balance == pytest.approx(0.0)
        assert poor.accounts["m"].balance == pytest.approx(40.0)
        assert not empty.accounts
        total = sum(
            m.accounts["m"].balance for m in (rich, poor)
        )
        assert total == pytest.approx(40.0)
        # transfers are balanced pairs: the siblings' transfer balances
        # cancel machine-wide
        assert sum(
            m.transfer_balance for m in (rich, poor, empty)
        ) == pytest.approx(0.0)

    def test_even_split_when_account_holds_nothing_anywhere(self):
        a = self._market({"m": (10.0, 0.0)})
        b = self._market({"m": (0.0, 0.0)})
        arbiter = GlobalArbiter([a, b])
        arbiter.rebalance_drams()
        assert a.accounts["m"].balance == pytest.approx(5.0)
        assert b.accounts["m"].balance == pytest.approx(5.0)

    def test_single_market_account_is_untouched(self):
        a = self._market({"solo": (7.0, 2.0), "m": (6.0, 0.0)})
        b = self._market({"m": (0.0, 3.0)})
        arbiter = GlobalArbiter([a, b])
        arbiter.rebalance_drams()
        assert a.accounts["solo"].balance == pytest.approx(7.0)
        assert a.accounts["m"].balance == pytest.approx(0.0)
        assert b.accounts["m"].balance == pytest.approx(6.0)

    def test_fewer_than_two_markets_is_a_no_op(self):
        a = self._market({"m": (9.0, 1.0)})
        arbiter = GlobalArbiter([a])
        assert arbiter.rebalance_drams() == 0.0
        assert arbiter.rebalance_rounds == 0


class TestLocalHitRatio:
    def test_ratio_is_one_with_zero_hinted_grants(self):
        """No hinted grants -> vacuously all-local (1.0), not 0/0."""
        system = _sharded_system()
        # the boot-time default manager has no home node, so nothing so
        # far was placement-hinted
        assert system.spcm.local_grant_pages == 0
        assert system.spcm.remote_grant_pages == 0
        assert system.spcm.local_hit_ratio() == 1.0

    def test_ratio_drops_when_demand_overflows_the_home_node(self):
        system = _sharded_system()
        manager = GenericSegmentManager(
            system.kernel, system.spcm, "hinted", initial_frames=0,
            home_node=0,
        )
        manager.request_frames(8)
        assert system.spcm.local_hit_ratio() == 1.0
        free_on_home = system.spcm.free_frames_by_node()[0]
        manager.request_frames(free_on_home + 8)
        assert 0.0 < system.spcm.local_hit_ratio() < 1.0
