"""MigratePages through bound regions (S2.1)."""

from __future__ import annotations

import pytest

from repro.core.api import MigratePagesRequest
from repro.core.kernel import Kernel
from repro.errors import MigrationError


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    data = kernel.create_segment(8, name="data")
    vas = kernel.create_segment(32, name="vas")
    vas.bind(16, 8, data, 0)
    return kernel, vas, data


class TestMigrateThroughBindings:
    def test_migrating_to_a_vas_range_lands_in_the_bound_segment(self, world):
        """'Migrating a page frame to the address range corresponding to
        the data region ... effectively migrates the page frame to the
        segment labeled Data Segment.'"""
        kernel, vas, data = world
        boot = kernel.initial_segment
        result = kernel.migrate_pages(MigratePagesRequest(boot, vas, 0, 18, 1))
        assert 18 not in vas.pages           # the VAS holds nothing itself
        # page 18 - 16 = 2 of data
        assert data.pages[2].pfn == result.moved_pfns[0]
        kernel.check_frame_conservation()

    def test_reclaiming_from_a_vas_range(self, world):
        kernel, vas, data = world
        boot = kernel.initial_segment
        kernel.migrate_pages(MigratePagesRequest(boot, data, 0, 2, 1))
        spare = kernel.create_segment(4, name="spare")
        kernel.migrate_pages(MigratePagesRequest(vas, spare, 18, 0, 1))
        assert 2 not in data.pages
        assert 0 in spare.pages

    def test_multi_page_unit_through_binding(self, world):
        kernel, vas, data = world
        boot = kernel.initial_segment
        kernel.migrate_pages(MigratePagesRequest(boot, vas, 0, 16, 4))
        assert sorted(data.pages) == [0, 1, 2, 3]

    def test_range_straddling_the_region_boundary_rejected(self, world):
        kernel, vas, data = world
        boot = kernel.initial_segment
        with pytest.raises(MigrationError):
            kernel.migrate_pages(
                MigratePagesRequest(boot, vas, 0, 22, 4)  # crosses page 24
            )
        kernel.check_frame_conservation()

    def test_unbound_vas_range_is_the_vas_itself(self, world):
        kernel, vas, data = world
        boot = kernel.initial_segment
        kernel.migrate_pages(
            MigratePagesRequest(boot, vas, 0, 0, 1)  # below the binding
        )
        assert 0 in vas.pages
        assert data.resident_pages == 0

    def test_nested_bindings_resolve_transitively(self, memory):
        kernel = Kernel(memory)
        leaf = kernel.create_segment(4, name="leaf")
        mid = kernel.create_segment(8, name="mid")
        top = kernel.create_segment(8, name="top")
        mid.bind(4, 4, leaf, 0)
        top.bind(0, 4, mid, 4)
        kernel.migrate_pages(
            MigratePagesRequest(kernel.initial_segment, top, 0, 1, 1)
        )
        assert leaf.pages.keys() == {1}

    def test_cow_via_binding_still_copies(self, memory):
        """Migrate-as-write holds through a binding onto a COW shadow."""
        kernel = Kernel(memory)
        source = kernel.create_segment(4, name="src")
        boot = kernel.initial_segment
        kernel.migrate_pages(MigratePagesRequest(boot, source, 0, 0, 1))
        source.pages[0].write(b"cowdata")
        shadow = kernel.create_segment(4, name="shadow", cow_source=source)
        vas = kernel.create_segment(8, name="vas")
        vas.bind(0, 4, shadow, 0)
        kernel.migrate_pages(MigratePagesRequest(boot, vas, 1, 0, 1))
        assert shadow.pages[0].read(0, 7) == b"cowdata"
        assert kernel.stats.cow_copies == 1
