"""The run-twice determinism gate.

Green paths re-run the shipped workloads and demand identical digest
chains; the red path injects real nondeterminism (an allocation policy
consulting the *global* unseeded RNG) and demands the gate catch it and
name the first divergent step.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import VerificationError
from repro.managers.base import GenericSegmentManager
from repro.verify.determinism import run_twice
from repro.verify.schedule import NAMED_SCHEDULES

pytestmark = pytest.mark.verify


class TestGreenPaths:
    def test_figure2_chaos_workload_is_deterministic(self):
        """The acceptance configuration: figure2, 4 nodes, chaos seed 7."""
        report = run_twice("figure2", nodes=4, chaos_seed=7)
        assert report.ok, report.render()
        a, b = report.runs
        assert a.chain.head == b.chain.head != ""
        assert len(a.chain.steps) == len(b.chain.steps) > 1

    def test_schedule_workload_is_deterministic(self):
        schedule = NAMED_SCHEDULES["table1"]()
        report = run_twice(schedule, nodes=2, chaos_seed=11)
        assert report.ok, report.render()

    def test_render_mentions_pass(self):
        report = run_twice("figure2")
        assert "PASS" in report.render()

    def test_unknown_workload_is_a_verification_error(self):
        with pytest.raises(VerificationError, match="unknown workload"):
            run_twice("no-such-workload")


class _ShuffledSlotManager(GenericSegmentManager):
    """Deliberately broken: allocation order depends on the global RNG."""

    def allocate_slot(self) -> int:
        random.shuffle(self._free_slots)
        return super().allocate_slot()


def _nondeterministic_workload(system, checker) -> int:
    manager = _ShuffledSlotManager(
        system.kernel, system.spcm, "shuffled", initial_frames=32
    )
    segment = system.kernel.create_segment(
        16, name="nd-space", manager=manager
    )
    for vpn in range(16):
        system.kernel.reference(segment, vpn, write=True)
    checker.check_all()
    return 16


class TestInjectedNondeterminism:
    def test_unseeded_rng_in_manager_is_caught(self):
        """Run A advances the global RNG, so run B allocates different
        frames; the gate must report the first step whose pfn differs."""
        random.seed(1234)  # a fixed *starting* point; the bug is that
        # run A's shuffles advance this shared state before run B starts
        report = run_twice(_nondeterministic_workload)
        assert not report.ok
        div = report.divergence
        assert div is not None
        assert div.label_a.startswith("fault:")
        assert div.label_a == div.label_b  # same step, different state
        assert "first divergent step" in div.describe()
        assert str(div.step) in report.render()
        # divergence points into the chain, not past its end
        assert div.step < len(report.runs[0].chain.steps)
