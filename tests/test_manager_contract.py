"""The segment-manager contract, enforced uniformly over every manager.

Whatever its policy, a segment manager must: resolve missing-page faults,
keep the frame-conservation invariant, reclaim a dying segment's frames,
surrender frames under SPCM pressure, and leave its own bookkeeping
auditable.  Each concrete manager in the library runs the same scenario.
"""

from __future__ import annotations

import pytest

from repro.analysis.audit import audit_kernel, audit_manager
from repro.core.kernel import Kernel
from repro.core.uio import FileServer
from repro.hw.costs import DECSTATION_5000_200
from repro.hw.disk import Disk
from repro.hw.numa import NumaTopology
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.base import GenericSegmentManager
from repro.managers.coloring_manager import ColoringSegmentManager
from repro.managers.dbms_manager import DBMSSegmentManager
from repro.managers.default_manager import DefaultSegmentManager
from repro.managers.discard_manager import DiscardableSegmentManager
from repro.managers.pinning import PinnedPageManager
from repro.managers.placement_manager import PlacementSegmentManager
from repro.managers.prefetch_manager import PrefetchingSegmentManager
from repro.managers.self_managing import SelfManagingManager
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import SystemPageCacheManager

FRAMES = 512


def build(factory_name: str):
    memory = PhysicalMemory(FRAMES * 4096)
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel, policy=ReservePolicy(0))
    disk = Disk(DECSTATION_5000_200)
    server = FileServer(kernel, disk)
    factories = {
        "generic": lambda: GenericSegmentManager(
            kernel, spcm, "generic", initial_frames=64
        ),
        "default": lambda: DefaultSegmentManager(
            kernel, spcm, server, initial_frames=64
        ),
        "dbms": lambda: DBMSSegmentManager(
            kernel, spcm, initial_frames=64, file_server=server
        ),
        "discard": lambda: DiscardableSegmentManager(
            kernel, spcm, server, initial_frames=64
        ),
        "prefetch": lambda: PrefetchingSegmentManager(
            kernel, spcm, server, initial_frames=64
        ),
        "coloring": lambda: ColoringSegmentManager(
            kernel, spcm, n_colors=8, frames_per_color=8
        ),
        "pinning": lambda: PinnedPageManager(
            kernel, spcm, initial_frames=64
        ),
        "placement": lambda: PlacementSegmentManager(
            kernel,
            spcm,
            NumaTopology.for_memory(memory, 4),
            frames_per_node=16,
        ),
        "self-managing": lambda: SelfManagingManager(
            kernel,
            spcm,
            DefaultSegmentManager(kernel, spcm, server, initial_frames=32),
            file_server=server,
            initial_frames=64,
        ),
    }
    return kernel, spcm, factories[factory_name]()


MANAGER_KINDS = (
    "generic",
    "default",
    "dbms",
    "discard",
    "prefetch",
    "coloring",
    "pinning",
    "placement",
    "self-managing",
)


@pytest.mark.parametrize("kind", MANAGER_KINDS)
class TestManagerContract:
    def test_resolves_faults_and_conserves_frames(self, kind):
        kernel, _, manager = build(kind)
        seg = kernel.create_segment(16, name="app", manager=manager)
        for page in range(16):
            frame = kernel.reference(seg, page * 4096, write=True)
            assert seg.pages[page] is frame
        kernel.check_frame_conservation()

    def test_reclaim_and_refault_roundtrip(self, kind):
        kernel, _, manager = build(kind)
        seg = kernel.create_segment(8, name="app", manager=manager)
        for page in range(8):
            kernel.reference(seg, page * 4096, write=True)
        manager.reclaim_pages(4)
        assert seg.resident_pages <= 8
        for page in range(8):
            kernel.reference(seg, page * 4096)
        assert seg.resident_pages == 8
        kernel.check_frame_conservation()

    def test_segment_deletion_reclaims_everything(self, kind):
        kernel, _, manager = build(kind)
        seg = kernel.create_segment(8, name="dying", manager=manager)
        for page in range(8):
            kernel.reference(seg, page * 4096)
        total_before = manager.total_frames
        kernel.delete_segment(seg)
        assert manager.total_frames == total_before
        assert manager.free_frames >= 8
        kernel.check_frame_conservation()

    def test_spcm_pressure_yields_frames(self, kind):
        kernel, spcm, manager = build(kind)
        seg = kernel.create_segment(8, name="app", manager=manager)
        for page in range(8):
            kernel.reference(seg, page * 4096)
        available = spcm.available_frames()
        freed = spcm.force_reclaim(manager, 4)
        assert freed > 0
        assert spcm.available_frames() == available + freed
        kernel.check_frame_conservation()

    def test_bookkeeping_is_auditable(self, kind):
        kernel, _, manager = build(kind)
        seg = kernel.create_segment(12, name="app", manager=manager)
        for page in range(12):
            kernel.reference(seg, page * 4096, write=(page % 3 == 0))
        manager.reclaim_pages(5)
        report = audit_kernel(kernel)
        audit_manager(manager, report)
        assert report.ok, report.findings
