"""End-to-end smoke test: ``bench_figure2_fault_path.py --trace``.

Runs the benchmark in a subprocess the way a user would, with the
``--trace`` flag, then validates every emitted JSONL record against
:data:`repro.obs.export.JSONL_SCHEMA`.  This is the tier-1 guard that
keeps the benchmark tracing harness and the trace schema honest.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.export import validate_record

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.obs_smoke
def test_figure2_benchmark_trace_emits_valid_jsonl(tmp_path):
    trace_dir = tmp_path / "traces"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/bench_figure2_fault_path.py",
            "--trace",
            "--trace-dir",
            str(trace_dir),
            "-q",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

    dumps = sorted(trace_dir.glob("*.jsonl"))
    assert len(dumps) == 2, [p.name for p in dumps]  # one per test
    for dump in dumps:
        n_spans = n_events = 0
        for line_no, line in enumerate(
            dump.read_text().splitlines(), start=1
        ):
            record = json.loads(line)
            validate_record(record)
            if record["type"] == "span":
                n_spans += 1
                assert record["t_end_us"] is not None, (
                    f"{dump.name}:{line_no}: unclosed span in dump"
                )
            else:
                n_events += 1
        # the figure-2 fault ran: spans and events both present
        assert n_spans > 0 and n_events > 0, dump.name
