"""Property-based B+-tree tests: equivalence with a dict model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.dbms.btree import BPlusTree

keys = st.integers(min_value=-10_000, max_value=10_000)


@given(st.lists(st.tuples(keys, st.integers())))
def test_insert_matches_dict_model(pairs):
    tree = BPlusTree(order=4)
    model: dict[int, int] = {}
    for key, value in pairs:
        tree.insert(key, value)
        model[key] = value
    assert len(tree) == len(model)
    for key, value in model.items():
        assert tree.search(key) == value
    assert [k for k, _ in tree.items()] == sorted(model)
    tree.check_invariants()


@given(st.lists(keys), st.lists(keys))
def test_delete_matches_dict_model(inserted, deleted):
    tree = BPlusTree(order=4)
    model: dict[int, int] = {}
    for key in inserted:
        tree.insert(key, key)
        model[key] = key
    for key in deleted:
        assert tree.delete(key) == (key in model)
        model.pop(key, None)
    assert dict(tree.items()) == model
    tree.check_invariants()


@given(st.lists(keys, min_size=1), keys, keys)
def test_range_matches_sorted_filter(inserted, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = BPlusTree(order=6)
    for key in inserted:
        tree.insert(key, key)
    expected = [(k, k) for k in sorted(set(inserted)) if lo <= k < hi]
    assert list(tree.range(lo, hi)) == expected


class BTreeMachine(RuleBasedStateMachine):
    """Interleaved operations keep the tree equivalent to a dict."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)
        self.model: dict[int, int] = {}

    @rule(key=keys, value=st.integers())
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=keys)
    def search(self, key):
        assert self.tree.search(key) == self.model.get(key)

    @invariant()
    def structurally_valid(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)


TestBTreeStateMachine = BTreeMachine.TestCase
TestBTreeStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
