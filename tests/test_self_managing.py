"""The self-managing manager: init sequence, pinning, swap protocol."""

from __future__ import annotations

import pytest

from repro.core.api import ModifyPageFlagsRequest
from repro.core.flags import PageFlags
from repro.errors import ManagerError
from repro.managers.self_managing import SelfManagingManager


@pytest.fixture
def manager(system):
    return SelfManagingManager(
        system.kernel,
        system.spcm,
        system.default_manager,
        file_server=system.file_server,
        initial_frames=64,
    )


class TestActivation:
    def test_own_segments_start_under_default_manager(self, system, manager):
        assert manager.code_segment.manager is system.default_manager
        assert manager.data_segment.manager is system.default_manager
        assert manager.signal_stack.manager is system.default_manager

    def test_activation_assumes_management_and_pins(self, system, manager):
        retries = manager.activate()
        assert retries == 0
        assert manager.active
        for seg in (
            manager.code_segment,
            manager.data_segment,
            manager.signal_stack,
        ):
            assert seg.manager is manager
            assert seg.resident_pages == seg.n_pages
            assert all(
                PageFlags.PINNED & PageFlags(f.flags)
                for f in seg.pages.values()
            )
            assert seg.seg_id in manager.pinned_segments

    def test_own_pages_never_chosen_as_victims(self, system, manager):
        manager.activate()
        app = system.kernel.create_segment(8, name="app", manager=manager)
        for page in range(8):
            system.kernel.reference(app, page * 4096)
        victims = manager.select_victims(100)
        own_ids = {
            manager.code_segment.seg_id,
            manager.data_segment.seg_id,
            manager.signal_stack.seg_id,
        }
        assert all(seg.seg_id not in own_ids for seg, _ in victims)

    def test_retry_when_pages_reclaimed_between_steps(self, system, manager):
        """The paper's retry loop: a fault after assuming ownership causes
        the initialization sequence to be retried until it succeeds."""
        default = system.default_manager
        original_set_manager = system.kernel.set_segment_manager
        stolen = {"done": False}

        def thieving_set_manager(request):
            original_set_manager(request)
            segment = system.kernel.segment(request.segment)
            # just after the manager assumes its data segment, the old
            # manager's clock steals a page (once)
            if (
                request.manager is manager
                and segment is manager.data_segment
                and not stolen["done"]
                and segment.pages
            ):
                stolen["done"] = True
                page = next(iter(segment.pages))
                manager.reclaim_one(segment, page)
                manager.invalidate_reclaim_cache()

        system.kernel.set_segment_manager = thieving_set_manager  # type: ignore[method-assign]
        try:
            retries = manager.activate()
        finally:
            system.kernel.set_segment_manager = original_set_manager  # type: ignore[method-assign]
        assert retries >= 1
        assert manager.active
        assert all(
            seg.resident_pages == seg.n_pages
            for seg in (manager.code_segment, manager.data_segment)
        )


class TestSignalStack:
    def test_fault_handling_requires_resident_signal_stack(
        self, system, manager
    ):
        manager.activate()
        app = system.kernel.create_segment(4, name="app", manager=manager)
        # force the signal stack out from under the manager
        manager.unpin_segment(manager.signal_stack)
        system.kernel.modify_page_flags(
            ModifyPageFlagsRequest(
                manager.signal_stack,
                0,
                manager.signal_stack.n_pages,
                clear_flags=PageFlags.PINNED,
            )
        )
        for page in list(manager.signal_stack.pages):
            manager.reclaim_one(manager.signal_stack, page)
        with pytest.raises(ManagerError):
            system.kernel.reference(app, 0)


class TestSwapProtocol:
    def test_swap_out_and_resume_roundtrip(self, system, manager):
        kernel = system.kernel
        manager.activate()
        app = kernel.create_segment(8, name="app", manager=manager)
        for page in range(8):
            frame = kernel.reference(app, page * 4096, write=True)
            frame.write(bytes([page]) * 32)
        swapped = manager.swap_out([app])
        assert swapped == 8
        assert app.resident_pages == 0
        assert not manager.active
        # own segments returned to the default manager
        assert manager.code_segment.manager is system.default_manager

        manager.resume()
        assert manager.active
        for page in range(8):
            frame = kernel.reference(app, page * 4096)
            assert frame.read(0, 32) == bytes([page]) * 32  # swap round trip
        kernel.check_frame_conservation()

    def test_swap_charges_io_for_dirty_pages_only(self, system, manager):
        kernel = system.kernel
        manager.activate()
        app = kernel.create_segment(8, name="app", manager=manager)
        for page in range(4):
            kernel.reference(app, page * 4096, write=True)   # dirty
        for page in range(4, 8):
            kernel.reference(app, page * 4096, write=False)  # clean
        kernel.meter.reset()
        manager.swap_out([app])
        swap_out_count = kernel.meter.counts.get("swap_out", 0)
        assert swap_out_count == 4

    def test_own_segments_rejected_from_swap_list(self, system, manager):
        manager.activate()
        with pytest.raises(ManagerError):
            manager.swap_out([manager.code_segment])

    def test_swap_requires_active(self, system, manager):
        app = system.kernel.create_segment(4, name="app", manager=manager)
        with pytest.raises(ManagerError):
            manager.swap_out([app])
