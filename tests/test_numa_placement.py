"""NUMA topology and the placement manager (the DASH case, S1/S2.2)."""

from __future__ import annotations

import pytest

from repro.core.kernel import Kernel
from repro.errors import HardwareError, ManagerError
from repro.hw.numa import NumaTopology
from repro.hw.phys_mem import PhysicalMemory
from repro.managers.placement_manager import PlacementSegmentManager
from repro.spcm.policy import ReservePolicy
from repro.spcm.spcm import SystemPageCacheManager

N_NODES = 4
MEM_BYTES = 4 * 1024 * 1024  # 1 MB per node


@pytest.fixture
def world():
    memory = PhysicalMemory(MEM_BYTES)
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel, policy=ReservePolicy(0))
    topology = NumaTopology.for_memory(memory, N_NODES)
    manager = PlacementSegmentManager(
        kernel, spcm, topology, frames_per_node=32
    )
    return kernel, topology, manager


class TestTopology:
    def test_node_of_address(self):
        topo = NumaTopology(4, 1024 * 1024)
        assert topo.node_of(0) == 0
        assert topo.node_of(1024 * 1024) == 1
        assert topo.node_of(4 * 1024 * 1024 - 1) == 3
        with pytest.raises(HardwareError):
            topo.node_of(4 * 1024 * 1024)

    def test_node_range(self):
        topo = NumaTopology(4, 1024 * 1024)
        lo, hi = topo.node_range(2)
        assert lo == 2 * 1024 * 1024 and hi == 3 * 1024 * 1024
        with pytest.raises(HardwareError):
            topo.node_range(4)

    def test_access_costs(self):
        topo = NumaTopology(2, 1024, local_access_us=0.1, remote_access_us=0.4)
        assert topo.access_us(0, 100) == 0.1
        assert topo.access_us(1, 100) == 0.4
        assert topo.is_local(0, 100)
        assert not topo.is_local(1, 100)

    def test_for_memory_must_divide(self):
        memory = PhysicalMemory(4 * 4096)
        with pytest.raises(HardwareError):
            NumaTopology.for_memory(memory, 3)

    def test_remote_cheaper_than_local_rejected(self):
        with pytest.raises(HardwareError):
            NumaTopology(2, 1024, local_access_us=1.0, remote_access_us=0.5)


class TestPlacementManager:
    def test_node_pools_are_physically_local(self, world):
        _, topology, manager = world
        for node in range(N_NODES):
            assert manager.free_on_node(node) == 32
        for node, slots in manager._by_node.items():
            for slot in slots:
                frame = manager.free_segment.pages[slot]
                assert topology.node_of(frame.phys_addr) == node

    def test_home_segment_pages_land_on_home_node(self, world):
        kernel, topology, manager = world
        seg = manager.create_home_segment(16, node=2)
        for page in range(16):
            kernel.reference(seg, page * 4096)
        report = manager.locality_report(seg)
        assert report["local_fraction"] == 1.0
        assert report["mean_access_us"] == pytest.approx(
            topology.local_access_us
        )
        assert manager.local_placements == 16
        assert manager.spilled_placements == 0

    def test_spill_when_home_node_exhausted(self, world):
        kernel, topology, manager = world
        # node 1's memory is 256 frames total; demand more than exists
        seg = manager.create_home_segment(250, node=1)
        big = manager.create_home_segment(40, node=1, name="big")
        for page in range(250):
            kernel.reference(seg, page * 4096)
        for page in range(40):
            kernel.reference(big, page * 4096)
        assert manager.spilled_placements > 0
        report = manager.locality_report(big)
        assert report["local_fraction"] < 1.0
        # spilled pages cost the remote rate
        assert report["mean_access_us"] > topology.local_access_us

    def test_reclaim_returns_frames_to_their_node_pool(self, world):
        kernel, topology, manager = world
        seg = manager.create_home_segment(8, node=3)
        for page in range(8):
            kernel.reference(seg, page * 4096)
        before = manager.free_on_node(3)
        manager.reclaim_one(seg, 0)
        assert manager.free_on_node(3) == before + 1

    def test_unknown_node_rejected(self, world):
        _, _, manager = world
        with pytest.raises(ManagerError):
            manager.create_home_segment(4, node=N_NODES)

    def test_segment_without_home_uses_generic_path(self, world):
        kernel, _, manager = world
        seg = kernel.create_segment(4, name="plain", manager=manager)
        kernel.reference(seg, 0)
        assert seg.resident_pages == 1
        with pytest.raises(ManagerError):
            manager.locality_report(seg)

    def test_placement_beats_random_on_access_cost(self, world):
        """The DASH argument, quantified: home placement yields the local
        access rate; spilled/remote placement pays the 4x penalty."""
        kernel, topology, manager = world
        local_seg = manager.create_home_segment(16, node=0, name="local")
        for page in range(16):
            kernel.reference(local_seg, page * 4096)
        local_cost = manager.locality_report(local_seg)["mean_access_us"]
        # a segment whose pages were deliberately placed off-node
        remote_seg = manager.create_home_segment(8, node=0, name="remote")
        manager.segment_home[remote_seg.seg_id] = 0
        # steal node-3 slots for it by reassigning its home temporarily
        manager.segment_home[remote_seg.seg_id] = 3
        for page in range(8):
            kernel.reference(remote_seg, page * 4096)
        manager.segment_home[remote_seg.seg_id] = 0  # accessed from node 0
        remote_cost = manager.locality_report(remote_seg)["mean_access_us"]
        assert remote_cost == pytest.approx(topology.remote_access_us)
        assert local_cost == pytest.approx(topology.local_access_us)
        assert remote_cost == pytest.approx(4 * local_cost)
