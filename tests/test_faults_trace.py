"""Fault descriptions and trace rendering."""

from __future__ import annotations

from repro.core.faults import FaultKind, FaultTrace, PageFault, TraceStep


class TestPageFault:
    def test_describe(self):
        fault = PageFault(3, 7, FaultKind.MISSING_PAGE, write=True)
        text = fault.describe()
        assert "write" in text and "page 7" in text and "segment 3" in text
        fault = PageFault(3, 7, FaultKind.PROTECTION, write=False)
        assert "read" in fault.describe()

    def test_frozen(self):
        fault = PageFault(1, 2, FaultKind.COPY_ON_WRITE, write=True)
        try:
            fault.page = 3  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestFaultTrace:
    def test_steps_numbered_in_order(self):
        trace = FaultTrace()
        trace.add("application", "traps", 20.0)
        trace.add("kernel", "forwards", 15.0)
        trace.add("manager", "resolves")
        assert [s.step for s in trace.steps] == [1, 2, 3]
        assert trace.total_cost_us == 35.0

    def test_render_shows_actors_and_costs(self):
        trace = FaultTrace()
        trace.add("kernel", "forwards fault", 15.0)
        trace.add("manager", "migrates frame")
        text = trace.render()
        assert "[kernel]" in text
        assert "(15 us)" in text
        assert "[manager] migrates frame" in text

    def test_trace_step_fields(self):
        step = TraceStep(1, "kernel", "x", 5.0)
        assert (step.step, step.actor, step.action, step.cost_us) == (
            1,
            "kernel",
            "x",
            5.0,
        )
