"""Application-specific managers: DBMS, coloring, discard, pinning."""

from __future__ import annotations

import pytest

from repro.core.api import GetPageAttributesRequest
from repro.core.flags import PageFlags
from repro.core.kernel import Kernel
from repro.core.uio import FileServer
from repro.errors import ManagerError
from repro.hw.costs import DECSTATION_5000_200
from repro.hw.disk import Disk
from repro.managers.coloring_manager import ColoringSegmentManager
from repro.managers.dbms_manager import DBMSSegmentManager
from repro.managers.discard_manager import DiscardableSegmentManager
from repro.managers.pinning import PinnedPageManager
from repro.spcm.spcm import SystemPageCacheManager


@pytest.fixture
def world(memory):
    kernel = Kernel(memory)
    spcm = SystemPageCacheManager(kernel)
    return kernel, spcm


class TestDBMSManager:
    def test_typed_segments_account_per_pool(self, world):
        kernel, spcm = world
        manager = DBMSSegmentManager(kernel, spcm, initial_frames=64)
        idx = manager.create_typed_segment(8, "indices")
        rel = manager.create_typed_segment(8, "relations")
        kernel.reference(idx, 0)
        kernel.reference(rel, 0)
        kernel.reference(rel, 4096)
        assert manager.pool_frames["indices"] == 1
        assert manager.pool_frames["relations"] == 2
        assert manager.pool_of(idx) == "indices"

    def test_unknown_pool_rejected(self, world):
        kernel, spcm = world
        manager = DBMSSegmentManager(kernel, spcm, initial_frames=8)
        with pytest.raises(ManagerError):
            manager.create_typed_segment(4, "blobs")

    def test_discard_segment_drops_without_writeback(self, world):
        kernel, spcm = world
        manager = DBMSSegmentManager(kernel, spcm, initial_frames=64)
        idx = manager.create_typed_segment(8, "indices")
        for page in range(8):
            kernel.reference(idx, page * 4096, write=True)  # dirty
        free_before = manager.free_frames
        dropped = manager.discard_segment(idx)
        assert dropped == 8
        assert idx.resident_pages == 0
        assert manager.free_frames == free_before + 8
        assert manager.pool_frames["indices"] == 0
        assert manager.discarded_segments == 1
        kernel.check_frame_conservation()

    def test_residency_queries(self, world):
        kernel, spcm = world
        manager = DBMSSegmentManager(kernel, spcm, initial_frames=16)
        rel = manager.create_typed_segment(10, "relations")
        kernel.reference(rel, 0)
        assert manager.is_resident(rel, 0)
        assert not manager.is_resident(rel, 5)
        assert manager.resident_fraction(rel) == 0.1

    def test_ensure_resident_and_pin(self, world):
        kernel, spcm = world
        manager = DBMSSegmentManager(kernel, spcm, initial_frames=32)
        rel = manager.create_typed_segment(8, "relations")
        brought = manager.ensure_resident(rel, [0, 1, 2])
        assert brought == 3
        assert manager.ensure_resident(rel, [0, 1]) == 0
        manager.pin_pages(rel, [0])
        assert PageFlags.PINNED & PageFlags(rel.pages[0].flags)
        victims = manager.select_victims(8)
        assert (rel.seg_id, 0) not in [(s.seg_id, p) for s, p in victims]

    def test_memory_available(self, world):
        kernel, spcm = world
        manager = DBMSSegmentManager(kernel, spcm, initial_frames=16)
        assert (
            manager.memory_available()
            == manager.free_frames + spcm.available_frames()
        )

    def test_placement_constrained_request(self, world):
        kernel, spcm = world
        manager = DBMSSegmentManager(kernel, spcm, initial_frames=0)
        got = manager.request_frames_in_range(
            4, phys_lo=0, phys_hi=64 * 4096
        )
        assert got == 4
        attrs = kernel.get_page_attributes(
            GetPageAttributesRequest(
                manager.free_segment, 0, manager.free_segment.n_pages
            )
        ).attributes
        for attr in attrs:
            if attr.present:
                assert attr.phys_addr is not None
                assert attr.phys_addr < 64 * 4096


class TestColoringManager:
    def test_stocks_are_per_color(self, world):
        kernel, spcm = world
        manager = ColoringSegmentManager(
            kernel, spcm, n_colors=4, frames_per_color=4
        )
        for color in range(4):
            assert manager.free_of_color(color) == 4

    def test_faults_get_matching_color(self, world):
        kernel, spcm = world
        manager = ColoringSegmentManager(
            kernel, spcm, n_colors=4, frames_per_color=8
        )
        seg = kernel.create_segment(8, manager=manager)
        for page in range(8):
            kernel.reference(seg, page * 4096)
        for page, frame in seg.pages.items():
            assert frame.color(4) == page % 4
        assert manager.color_hits == 8
        assert manager.color_misses == 0

    def test_fallback_when_color_exhausted(self, world):
        kernel, spcm = world
        manager = ColoringSegmentManager(
            kernel, spcm, n_colors=4, frames_per_color=1
        )
        seg = kernel.create_segment(8, manager=manager)
        kernel.reference(seg, 0)        # color 0 available
        kernel.reference(seg, 4 * 4096)  # color 0 again: exhausted
        assert manager.color_misses >= 1
        assert seg.resident_pages == 2

    def test_placement_report(self, world):
        kernel, spcm = world
        manager = ColoringSegmentManager(
            kernel, spcm, n_colors=2, frames_per_color=4
        )
        seg = kernel.create_segment(4, manager=manager)
        for page in range(4):
            kernel.reference(seg, page * 4096)
        report = manager.placement_report(seg)
        assert report == {0: 2, 1: 2}

    def test_requires_colors(self, world):
        kernel, spcm = world
        with pytest.raises(ValueError):
            ColoringSegmentManager(kernel, spcm, n_colors=0)


class TestDiscardManager:
    def test_discardable_pages_skip_writeback(self, world):
        kernel, spcm = world
        manager = DiscardableSegmentManager(kernel, spcm, initial_frames=32)
        seg = kernel.create_segment(8, manager=manager)
        for page in range(4):
            kernel.reference(seg, page * 4096, write=True)
        manager.mark_discardable(seg, 0, 2)
        manager.reclaim_one(seg, 0)
        manager.reclaim_one(seg, 2)  # live dirty page
        assert manager.writebacks_avoided == 1
        assert manager.writebacks_done == 1

    def test_discardable_preferred_as_victims(self, world):
        kernel, spcm = world
        manager = DiscardableSegmentManager(kernel, spcm, initial_frames=32)
        seg = kernel.create_segment(8, manager=manager)
        for page in range(4):
            kernel.reference(seg, page * 4096, write=True)
        manager.mark_discardable(seg, 3, 1)
        victims = manager.select_victims(1)
        assert victims == [(seg, 3)]

    def test_garbage_is_not_resurrected(self, world):
        """A discarded garbage page must not come back via migrate-back."""
        kernel, spcm = world
        manager = DiscardableSegmentManager(kernel, spcm, initial_frames=32)
        seg = kernel.create_segment(4, manager=manager)
        frame = kernel.reference(seg, 0, write=True)
        frame.write(b"garbage")
        manager.mark_discardable(seg, 0)
        manager.reclaim_one(seg, 0)
        assert manager.fast_reclaims == 0
        kernel.reference(seg, 0)
        assert manager.fast_reclaims == 0

    def test_mark_live_restores_writeback(self, world):
        kernel, spcm = world
        manager = DiscardableSegmentManager(kernel, spcm, initial_frames=32)
        seg = kernel.create_segment(4, manager=manager)
        kernel.reference(seg, 0, write=True)
        manager.mark_discardable(seg, 0)
        manager.mark_live(seg, 0)
        manager.reclaim_one(seg, 0)
        assert manager.writebacks_avoided == 0
        assert manager.writebacks_done == 1

    def test_availability_knowledge(self, world):
        """The knowledge Subramanian's Mach pager lacked (S4)."""
        kernel, spcm = world
        manager = DiscardableSegmentManager(kernel, spcm, initial_frames=16)
        assert manager.memory_available() > 0

    def test_same_user_reallocation_not_zeroed(self, world):
        kernel, spcm = world
        manager = DiscardableSegmentManager(kernel, spcm, initial_frames=16)
        seg = kernel.create_segment(4, manager=manager)
        frame = kernel.reference(seg, 0, write=True)
        frame.write(b"data")
        manager.mark_discardable(seg, 0)
        manager.reclaim_one(seg, 0)
        zero_fills = kernel.stats.zero_fills
        seg2 = kernel.create_segment(4, manager=manager)
        kernel.reference(seg2, 0)  # reuses the frame, same account
        assert kernel.stats.zero_fills == zero_fills


class TestPinnedPageManager:
    def test_pin_quota_enforced(self, world):
        kernel, spcm = world
        manager = PinnedPageManager(
            kernel, spcm, initial_frames=32, pin_quota=4
        )
        seg = kernel.create_segment(8, manager=manager)
        pinned = manager.mpin(seg, 0, 8)
        assert pinned == 4
        assert manager.pin_refusals == 1
        assert manager.pinned_count() == 4

    def test_pin_implies_residency(self, world):
        kernel, spcm = world
        manager = PinnedPageManager(kernel, spcm, initial_frames=32)
        seg = kernel.create_segment(8, manager=manager)
        manager.mpin(seg, 2, 2)
        assert 2 in seg.pages and 3 in seg.pages

    def test_unpinned_pages_reclaimed_behind_apps_back(self, world):
        kernel, spcm = world
        manager = PinnedPageManager(
            kernel, spcm, initial_frames=32, pin_quota=2
        )
        seg = kernel.create_segment(8, manager=manager)
        for page in range(6):
            kernel.reference(seg, page * 4096)
        manager.mpin(seg, 0, 2)
        taken = manager.system_pressure(6)
        assert taken == 4  # everything unpinned went; pins survived
        assert 0 in seg.pages and 1 in seg.pages

    def test_munpin_validates(self, world):
        kernel, spcm = world
        manager = PinnedPageManager(kernel, spcm, initial_frames=16)
        seg = kernel.create_segment(4, manager=manager)
        manager.mpin(seg, 0, 1)
        manager.munpin(seg, 0, 1)
        with pytest.raises(ManagerError):
            manager.munpin(seg, 0, 1)

    def test_double_pin_is_idempotent(self, world):
        kernel, spcm = world
        manager = PinnedPageManager(kernel, spcm, initial_frames=16)
        seg = kernel.create_segment(4, manager=manager)
        assert manager.mpin(seg, 0, 1) == 1
        assert manager.mpin(seg, 0, 1) == 0
        assert manager.pinned_count() == 1
