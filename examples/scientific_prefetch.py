#!/usr/bin/env python
"""Application-directed read-ahead for a scientific scan (the MP3D case).

The paper's S1 example: a particle simulation scans ~200 MB per time step
in ~12 seconds, so if the data does not fit in memory there is ample time
to overlap prefetch and writeback with compute.  This example scans a
(scaled-down) dataset three ways:

* demand paging        — stall on every fault;
* application prefetch — the manager fetches N pages ahead of the scan;
* prefetch + discard   — intermediate (regenerable) dirty pages are
  dropped instead of written back, halving the I/O demand.

Run:  python examples/scientific_prefetch.py
"""

from repro import build_system
from repro.managers import PrefetchingSegmentManager

DATA_PAGES = 192          # the scanned dataset (scaled from 200 MB)
COMPUTE_PER_PAGE_US = 9_000.0   # compute per page of a time step
READ_AHEAD = 8            # prefetch depth


def make_world():
    system = build_system(memory_mb=16)
    manager = PrefetchingSegmentManager(
        system.kernel,
        system.spcm,
        system.file_server,
        initial_frames=DATA_PAGES + 16,
        io_service_us=8_000.0,   # one disk, 8 ms per page
    )
    data = system.kernel.create_segment(
        DATA_PAGES, name="particles", manager=manager
    )
    system.file_server.create_file(data, data=b"p" * (DATA_PAGES * 4096))
    return system, manager, data


def scan_demand() -> float:
    _, manager, data = make_world()
    clock = 0.0
    for page in range(DATA_PAGES):
        clock += manager.access(data, page, clock, write=True)
        clock += COMPUTE_PER_PAGE_US
    return clock


def scan_prefetch(discard_intermediates: bool) -> tuple[float, float]:
    _, manager, data = make_world()
    if discard_intermediates:
        manager.mark_discardable(data)
    clock = 0.0
    # prime the pipeline, then keep READ_AHEAD pages in flight
    for page in range(min(READ_AHEAD, DATA_PAGES)):
        manager.prefetch(data, page, clock)
    for page in range(DATA_PAGES):
        ahead = page + READ_AHEAD
        if ahead < DATA_PAGES:
            manager.prefetch(data, ahead, clock)
        clock += manager.access(data, page, clock, write=True)
        clock += COMPUTE_PER_PAGE_US
        # steady-state memory: retire the page we are done with
        retire = page - READ_AHEAD
        if retire >= 0:
            manager.writeback_or_discard(data, retire, clock)
    return clock, manager.io.utilization(clock)


def main() -> None:
    demand = scan_demand()
    prefetch, util_wb = scan_prefetch(discard_intermediates=False)
    discard, util_disc = scan_prefetch(discard_intermediates=True)

    compute_only = DATA_PAGES * COMPUTE_PER_PAGE_US
    print("== scanning a 768 KB dataset with 8 ms/page disk ==")
    print(f"pure compute (no I/O)        : {compute_only / 1e6:7.3f} s")
    print(f"demand paging                : {demand / 1e6:7.3f} s")
    print(f"prefetch + writeback         : {prefetch / 1e6:7.3f} s "
          f"(disk {util_wb * 100:.0f}% busy)")
    print(f"prefetch + discard           : {discard / 1e6:7.3f} s "
          f"(disk {util_disc * 100:.0f}% busy)")
    penalty = demand - compute_only
    hidden = demand - discard
    print(f"\nwith writeback the single disk saturates (2 I/Os per page), "
          f"so prefetch alone hides only "
          f"{100 * (demand - prefetch) / penalty:.0f}% of the paging "
          f"penalty;")
    print(f"prefetch plus discarding regenerable intermediates hides "
          f"{100 * hidden / penalty:.0f}% of it --- conserving I/O "
          f"bandwidth is half the win (paper S2.2).")


if __name__ == "__main__":
    main()
