#!/usr/bin/env python
"""The memory market: drams, savings, and the batch save-then-run cycle.

The SPCM prices memory at D drams per megabyte-second against an income
of I drams per second (S2.4).  A batch program that cannot afford its
working set *saves* while swapped out, queries the market for the
save-vs-run tradeoff, then runs a full-memory timeslice and returns the
memory when its savings run low.

Run:  python examples/memory_market.py
"""

from repro import build_system
from repro.managers import GenericSegmentManager
from repro.spcm.market import MarketConfig, MemoryMarket
from repro.spcm.policy import MarketPolicy
from repro.spcm.spcm import SystemPageCacheManager

MB = 1024 * 1024


def main() -> None:
    system = build_system(memory_mb=32)
    kernel = system.kernel
    market = MemoryMarket(
        MarketConfig(
            price_per_mb_second=1.0,
            income_per_second=4.0,
            savings_tax_rate=0.002,
            savings_tax_threshold=200.0,
        )
    )
    spcm = SystemPageCacheManager(
        kernel, policy=MarketPolicy(market, min_hold_seconds=2.0), market=market
    )
    batch = GenericSegmentManager(kernel, spcm, "batch-job", initial_frames=0)
    market.demand_outstanding = True  # a busy machine: memory is charged

    working_set_mb = 16.0
    frames_needed = int(working_set_mb * MB / 4096)
    timeslice_s = 8.0

    print("== a batch program under the memory market ==")
    print(f"needs {working_set_mb:.0f} MB for {timeslice_s:.0f} s at "
          f"{market.config.price_per_mb_second} dram/MB-s; income "
          f"{market.account('batch-job').income_per_second} drams/s")

    now = 0.0
    wait = market.seconds_until_affordable(
        "batch-job", working_set_mb, timeslice_s
    )
    print(f"\n[t={now:6.1f}s] balance "
          f"{market.account('batch-job').balance:7.1f} drams -> must save "
          f"for {wait:.1f} s (swapped out, near-zero memory)")
    now += wait
    spcm.advance_market(now)

    granted = batch.request_frames(frames_needed)
    print(f"[t={now:6.1f}s] balance "
          f"{market.account('batch-job').balance:7.1f} drams -> SPCM "
          f"granted {granted} frames ({granted * 4096 / MB:.0f} MB)")

    horizon = market.affordable_seconds("batch-job", working_set_mb)
    print(f"[t={now:6.1f}s] market says this holding is affordable for "
          f"{horizon:.1f} s -- the program can *plan* its timeslice")

    now += timeslice_s
    spcm.advance_market(now)
    acct = market.account("batch-job")
    print(f"[t={now:6.1f}s] after the timeslice: balance "
          f"{acct.balance:7.1f} drams (paid {acct.total_memory_charges:.1f} "
          f"for memory)")

    returned = batch.return_frames(granted)
    print(f"[t={now:6.1f}s] pages out and returns {returned} frames; "
          f"back to saving")

    # conservation sanity
    assert abs(market.total_drams()) < 1e-6
    print("\ndram conservation holds across the whole cycle.")


if __name__ == "__main__":
    main()
