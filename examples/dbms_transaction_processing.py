#!/usr/bin/env python
"""The Table-4 database study: why applications need memory knowledge.

Runs the paper's four transaction-processing configurations (S3.3) on the
discrete-event engine --- real hierarchical locks, real CPU queueing,
simulated compute --- and prints the response-time table next to the
paper's numbers.  Then demonstrates the decision itself: a DBMS segment
manager that *knows* its allocation shrank discards the regenerable index
instead of letting it thrash.

Run:  python examples/dbms_transaction_processing.py [--full]
      (--full uses the paper-scale 120 s runs; default is 40 s)
"""

import sys

from repro.dbms import run_tp_experiment, table4_configurations
from repro.dbms.buffer import SegmentBackedIndex
from repro.dbms.simulator import PAPER_TABLE4


def run_table4(duration_s: float) -> None:
    print(f"== Table 4 ({duration_s:.0f}s per configuration, 40 TPS, "
          f"6 CPUs, 95% DebitCredit / 5% joins) ==")
    print(f"{'configuration':<20} {'avg ms':>8} {'paper':>7} "
          f"{'worst ms':>9} {'paper':>7}")
    for config in table4_configurations(duration_s=duration_s):
        result = run_tp_experiment(config)
        paper_avg, paper_worst = PAPER_TABLE4[config.policy]
        print(f"{result.label:<20} {result.avg_response_ms:>8.0f} "
              f"{paper_avg:>7.0f} {result.worst_response_ms:>9.0f} "
              f"{paper_worst:>7.0f}")


def show_the_decision() -> None:
    print("\n== the application-controlled decision ==")
    index = SegmentBackedIndex(n_pages=256)  # the paper's 1 MB index
    manager = index.manager
    print(f"index resident: {index.n_resident}/256 pages; "
          f"manager holds {manager.total_frames} frames")

    # The SPCM reduces the allocation by 1 MB (256 frames).  A manager
    # with full knowledge discards the regenerable index wholesale ---
    # no writeback, no future thrashing --- rather than surrendering
    # arbitrary pages.
    print("SPCM demands 256 frames back...")
    dropped = index.discard()
    print(f"manager discarded the whole index: {dropped} pages freed, "
          f"0 written back (it is regenerable)")
    returned = manager.return_frames(256)
    print(f"manager returned {returned} frames to the SPCM")

    print("next join regenerates the index in memory:")
    index.regenerate()
    print(f"index resident again: {index.n_resident}/256 pages")


def main() -> None:
    duration = 120.0 if "--full" in sys.argv[1:] else 40.0
    run_table4(duration)
    show_the_decision()
    print("\nThe shape of Table 4: a little paging erases the index's "
          "benefit; regeneration keeps almost all of it.")


if __name__ == "__main__":
    main()
