#!/usr/bin/env python
"""Quickstart: external page-cache management in five minutes.

Boots a V++ system, writes a tiny application-specific segment manager by
specializing the generic one (exactly the paper's S2.2 recipe), and shows:

1. the manager observing and resolving its application's page faults;
2. `GetPageAttributes` exposing flags and *physical* addresses;
3. the kernel's Figure-2 fault trace;
4. the cost difference between in-process and default (separate-process)
   fault handling --- the paper's 107 us vs. 379 us.

Run:  python examples/quickstart.py
"""

from repro import build_system
from repro.core import FaultTrace, PageFlags, describe_flags
from repro.core.api import GetPageAttributesRequest
from repro.managers import GenericSegmentManager


class LoggingManager(GenericSegmentManager):
    """A specialized manager: logs faults and zero-fills heap pages."""

    def __init__(self, kernel, spcm):
        super().__init__(kernel, spcm, "quickstart-manager", initial_frames=32)
        self.log: list[str] = []

    def fill_page(self, segment, page, frame):
        # Application-specific fill policy: tag each page with its number.
        frame.write(b"page %03d says hello" % page)
        self.log.append(f"filled page {page} of {segment.name}")


def main() -> None:
    system = build_system(memory_mb=16)
    kernel = system.kernel

    print("== a booted V++ system ==")
    print(f"physical memory : {system.memory.size_bytes // 2**20} MB "
          f"({system.memory.n_frames} frames)")
    print(f"boot segment    : {kernel.initial_segment.name} holds "
          f"{kernel.initial_segment.resident_pages} frames")

    # --- an application manages its own memory -------------------------
    manager = LoggingManager(kernel, system.spcm)
    heap = kernel.create_segment(16, name="app.heap", manager=manager)

    print("\n== touching three heap pages ==")
    for page in (0, 7, 3):
        frame = kernel.reference(heap, page * 4096, write=False)
        print(f"  page {page}: pfn={frame.pfn} "
              f"data={frame.read(0, 20)!r}")
    for line in manager.log:
        print(f"  manager: {line}")

    # --- the paper's new kernel operations ------------------------------
    print("\n== GetPageAttributes(app.heap, 0, 8) ==")
    reply = kernel.get_page_attributes(GetPageAttributesRequest(heap, 0, 8))
    for attr in reply.attributes:
        if attr.present:
            print(f"  page {attr.page}: pfn={attr.pfn} "
                  f"phys={attr.phys_addr:#09x} "
                  f"flags={describe_flags(attr.flags)}")
        else:
            print(f"  page {attr.page}: not resident")

    # --- watch one fault in Figure-2 detail ------------------------------
    print("\n== fault trace (Figure 2) ==")
    kernel.trace = FaultTrace()
    kernel.reference(heap, 11 * 4096, write=True)
    print(kernel.trace.render())
    kernel.trace = None

    # --- cost comparison ---------------------------------------------------
    print("\n== minimal fault cost: in-process vs default manager ==")
    snap = kernel.meter.snapshot()
    kernel.reference(heap, 12 * 4096, write=True)
    in_process = sum(kernel.meter.delta_since(snap).values())

    conventional = kernel.create_segment(
        4, name="conventional.heap", manager=system.default_manager
    )
    snap = kernel.meter.snapshot()
    kernel.reference(conventional, 0, write=True)
    separate = sum(kernel.meter.delta_since(snap).values())
    print(f"  faulting-process manager : {in_process:.0f} us  (paper: 107)")
    print(f"  default segment manager  : {separate:.0f} us  (paper: 379)")

    kernel.check_frame_conservation()
    print("\nframe conservation holds; done.")


if __name__ == "__main__":
    main()
