#!/usr/bin/env python
"""Application-specific page coloring (paper S1).

A physically-addressed direct-mapped cache maps two pages to the same
lines whenever their frame numbers collide mod the color count.  An
application that can ask the SPCM for frames *by color* --- possible only
because `GetPageAttributes` exposes physical addresses --- spreads its hot
data across the cache; one given arbitrary frames may stack it on a few
colors.

This example allocates a hot working set both ways and replays the same
access pattern against the DECstation's 64 KB direct-mapped cache.

Run:  python examples/page_coloring.py
"""

from repro import build_system
from repro.hw.cache import PhysicallyIndexedCache
from repro.managers import ColoringSegmentManager, GenericSegmentManager

HOT_PAGES = 16  # the hot working set: exactly one cache's worth


def measure(kernel, segment, sweeps: int = 8) -> float:
    cache = PhysicallyIndexedCache(64 * 1024, page_size=4096)
    for _ in range(sweeps):
        for page in sorted(segment.pages):
            frame = segment.pages[page]
            cache.access_page(frame.phys_addr)
    return cache.stats.miss_rate


def adversarial_free_list(system, manager):
    """Leave the generic manager only same-color frames (a fragmented
    machine after long uptime does this naturally)."""
    kernel = system.kernel
    boot = kernel.initial_segment
    n_colors = 16
    manager.return_frames(manager.free_frames)
    # hand it frames of a single color
    from repro.spcm.spcm import FrameRequest

    pages = system.spcm.request_frames(
        manager,
        FrameRequest(manager.account, HOT_PAGES,
                     colors=frozenset({5}), n_colors=n_colors),
        manager.free_segment,
    )
    manager._free_slots.extend(pages)


def main() -> None:
    system = build_system(memory_mb=16)
    kernel = system.kernel

    # --- uncolored: a generic manager with an unlucky free list ----------
    generic = GenericSegmentManager(
        kernel, system.spcm, "uncolored", initial_frames=HOT_PAGES
    )
    adversarial_free_list(system, generic)
    plain = kernel.create_segment(HOT_PAGES, name="plain", manager=generic)
    for page in range(HOT_PAGES):
        kernel.reference(plain, page * 4096)
    plain_miss = measure(kernel, plain)

    # --- colored: per-color stocks from the SPCM --------------------------
    coloring = ColoringSegmentManager(
        kernel, system.spcm, n_colors=16, frames_per_color=4
    )
    colored = kernel.create_segment(HOT_PAGES, name="colored", manager=coloring)
    for page in range(HOT_PAGES):
        kernel.reference(colored, page * 4096)
    colored_miss = measure(kernel, colored)

    print("== 16 hot pages vs a 64 KB direct-mapped physical cache ==")
    print(f"arbitrary frames  : miss rate {plain_miss * 100:5.1f}%")
    print(f"colored frames    : miss rate {colored_miss * 100:5.1f}%  "
          f"(color hits {coloring.color_hits}/{HOT_PAGES})")
    report = coloring.placement_report(colored)
    print(f"colored placement : {len(report)} distinct colors used")
    assert colored_miss < plain_miss
    print("\ncoloring eliminates the conflict misses the arbitrary "
          "placement suffers every sweep.")


if __name__ == "__main__":
    main()
