#!/usr/bin/env python
"""The S1 adaptations: applications that resize themselves to real memory.

Two of the paper's motivating applications, end to end:

1. **MP3D** sizes its particle set to the physical memory the SPCM
   reports, trading particles-per-run against number of runs; and when
   the data slightly exceeds memory, application-directed prefetch hides
   the paging entirely (the "ample time to overlap" claim).
2. **A garbage-collected runtime** adapts its collection frequency to
   available physical memory: more collections on a small machine, but
   *zero* paging of live data --- while the memory-oblivious collector
   with a fixed virtual-heap threshold thrashes.

Run:  python examples/adaptive_applications.py
"""

from repro.workloads.adaptive_gc import run_gc_workload
from repro.workloads.mp3d import MP3DModel


def mp3d_section() -> None:
    model = MP3DModel()
    config = model.config
    print("== MP3D: the space-time tradeoff ==")
    print(f"dataset {config.data_mb:.0f} MB, scan {config.scan_seconds:.0f} s "
          f"per time step (the paper's figures)")
    samples = 50_000_000
    print(f"\nto accumulate {samples / 1e6:.0f}M particle samples:")
    for mb in (50, 100, 200):
        particles = model.particles_for_memory(mb)
        runs = model.runs_needed(samples, mb)
        print(f"  {mb:4d} MB available -> {particles / 1e6:5.2f}M "
              f"particles/run -> {runs:3d} runs")

    print("\n== MP3D: overlapping paging with compute ==")
    limit = model.max_overlappable_shortfall_mb(writeback=False)
    print(f"overlappable shortfall at {config.io_bandwidth_mb_s:.0f} MB/s "
          f"sequential I/O: up to {limit:.0f} MB")
    for shortfall in (0.0, 20.0, 32.0, 60.0):
        demand = model.simulate_timestep(shortfall, prefetch=False)
        prefetch = model.simulate_timestep(shortfall, prefetch=True)
        print(f"  shortfall {shortfall:5.0f} MB: demand {demand:6.2f} s, "
              f"prefetch {prefetch:6.2f} s")


def gc_section() -> None:
    print("\n== adaptive garbage collection ==")
    print(f"{'machine':>10} {'policy':>10} {'GCs':>5} "
          f"{'garbage discarded':>18} {'live pages paged':>17}")
    for frames in (96, 192, 384):
        stats = run_gc_workload(adaptive=True, physical_frames=frames)
        print(f"{frames:7d} fr {'adaptive':>10} {stats.collections:5d} "
              f"{stats.garbage_pages_discarded:18d} "
              f"{stats.paging_io_operations:17d}")
    stats = run_gc_workload(adaptive=False, physical_frames=96)
    print(f"{96:7d} fr {'oblivious':>10} {stats.collections:5d} "
          f"{stats.garbage_pages_discarded:18d} "
          f"{stats.paging_io_operations:17d}")
    print("\nthe adaptive runtime collects more often on small machines "
          "but never pages live data;\nthe oblivious one collects rarely "
          "and thrashes instead.")


def main() -> None:
    mp3d_section()
    gc_section()


if __name__ == "__main__":
    main()
